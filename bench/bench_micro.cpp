// Micro-benchmarks (google-benchmark) of the real host backends and the
// hot substrate paths: these measure actual wall-clock on this machine,
// complementing the simulated figure benches.
//
// On top of the google-benchmark cases, main() runs the fused-vs-looped
// solve_batch comparison (1/4/16 rhs across representative backends) and
// writes it to BENCH_batch.json (override with MSPTRSV_BENCH_JSON) so
// future PRs can track the amortization trajectory machine-readably.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "core/msptrsv.hpp"

using namespace msptrsv;

namespace {

const sparse::CscMatrix& bench_matrix() {
  static const sparse::CscMatrix m =
      sparse::gen_layered_dag(20000, 50, 120000, 0.5, 99);
  return m;
}

const std::vector<value_t>& bench_rhs() {
  static const std::vector<value_t> b = sparse::gen_rhs_for_solution(
      bench_matrix(), sparse::gen_solution(bench_matrix().rows, 5));
  return b;
}

void BM_SerialSolve(benchmark::State& state) {
  const auto& l = bench_matrix();
  const auto& b = bench_rhs();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::solve_lower_serial(l, b));
  }
  state.SetItemsProcessed(state.iterations() * l.nnz());
}
BENCHMARK(BM_SerialSolve);

void BM_CpuLevelSetSolve(benchmark::State& state) {
  const auto& l = bench_matrix();
  const auto& b = bench_rhs();
  const sparse::LevelAnalysis a = sparse::analyze_levels(l);
  const int threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::solve_lower_levelset_threads(l, b, a, threads));
  }
  state.SetItemsProcessed(state.iterations() * l.nnz());
}
BENCHMARK(BM_CpuLevelSetSolve)->Arg(1)->Arg(2)->Arg(4);

void BM_CpuSyncFreeSolve(benchmark::State& state) {
  const auto& l = bench_matrix();
  const auto& b = bench_rhs();
  const int threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::solve_lower_syncfree_threads(l, b, threads));
  }
  state.SetItemsProcessed(state.iterations() * l.nnz());
}
BENCHMARK(BM_CpuSyncFreeSolve)->Arg(1)->Arg(2)->Arg(4);

void BM_LevelAnalysis(benchmark::State& state) {
  const auto& l = bench_matrix();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sparse::analyze_levels(l));
  }
  state.SetItemsProcessed(state.iterations() * l.nnz());
}
BENCHMARK(BM_LevelAnalysis);

void BM_InDegreeCount(benchmark::State& state) {
  const auto& l = bench_matrix();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sparse::compute_in_degrees(l));
  }
  state.SetItemsProcessed(state.iterations() * l.nnz());
}
BENCHMARK(BM_InDegreeCount);

void BM_LayeredDagGenerator(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sparse::gen_layered_dag(10000, 40, 60000, 0.5, 7));
  }
}
BENCHMARK(BM_LayeredDagGenerator);

void BM_SimulatedZerocopy4Gpu(benchmark::State& state) {
  const auto& l = bench_matrix();
  const auto& b = bench_rhs();
  const core::SolveOptions o =
      core::registry::options_for("mg-zerocopy").value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::solve(l, b, o));
  }
  state.SetItemsProcessed(state.iterations() * l.nnz());
}
BENCHMARK(BM_SimulatedZerocopy4Gpu);

// ---- one-shot vs plan: the amortization the phase-split API exists for.
// The one-shot path re-runs validation + analysis every call; the plan
// path pays them once in analyze() and each iteration below is a pure
// solve. Per-iteration time must drop for the plan variants.

void BM_OneShotSolve_CpuSyncFree(benchmark::State& state) {
  const auto& l = bench_matrix();
  const auto& b = bench_rhs();
  core::SolveOptions o = core::registry::options_for("cpu-syncfree").value();
  o.cpu_threads = 2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::solve(l, b, o));
  }
  state.SetItemsProcessed(state.iterations() * l.nnz());
}
BENCHMARK(BM_OneShotSolve_CpuSyncFree);

void BM_PlanSolve_CpuSyncFree(benchmark::State& state) {
  const auto& l = bench_matrix();
  const auto& b = bench_rhs();
  core::SolveOptions o = core::registry::options_for("cpu-syncfree").value();
  o.cpu_threads = 2;
  const core::SolverPlan plan = core::SolverPlan::analyze(l, o).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(plan.solve(b));
  }
  state.SetItemsProcessed(state.iterations() * l.nnz());
}
BENCHMARK(BM_PlanSolve_CpuSyncFree);

void BM_OneShotSolve_Serial(benchmark::State& state) {
  const auto& l = bench_matrix();
  const auto& b = bench_rhs();
  const core::SolveOptions o = core::registry::options_for("serial").value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::solve(l, b, o));
  }
  state.SetItemsProcessed(state.iterations() * l.nnz());
}
BENCHMARK(BM_OneShotSolve_Serial);

void BM_PlanSolve_Serial(benchmark::State& state) {
  const auto& l = bench_matrix();
  const auto& b = bench_rhs();
  const core::SolverPlan plan =
      core::SolverPlan::analyze(l, core::registry::options_for("serial").value())
          .value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(plan.solve(b));
  }
  state.SetItemsProcessed(state.iterations() * l.nnz());
}
BENCHMARK(BM_PlanSolve_Serial);

void BM_PlanSolve_Zerocopy(benchmark::State& state) {
  const auto& l = bench_matrix();
  const auto& b = bench_rhs();
  const core::SolverPlan plan =
      core::SolverPlan::analyze(
          l, core::registry::options_for("mg-zerocopy").value())
          .value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(plan.solve(b));
  }
  state.SetItemsProcessed(state.iterations() * l.nnz());
}
BENCHMARK(BM_PlanSolve_Zerocopy);

void BM_PlanSolveBatch8_Serial(benchmark::State& state) {
  const auto& l = bench_matrix();
  const index_t num_rhs = 8;
  std::vector<value_t> batch;
  for (index_t j = 0; j < num_rhs; ++j) {
    const std::vector<value_t> b = sparse::gen_rhs_for_solution(
        l, sparse::gen_solution(l.rows, 100 + static_cast<std::uint64_t>(j)));
    batch.insert(batch.end(), b.begin(), b.end());
  }
  const core::SolverPlan plan =
      core::SolverPlan::analyze(l, core::registry::options_for("serial").value())
          .value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(plan.solve_batch(batch, num_rhs));
  }
  state.SetItemsProcessed(state.iterations() * l.nnz() * num_rhs);
}
BENCHMARK(BM_PlanSolveBatch8_Serial);

void BM_CscTranspose(benchmark::State& state) {
  const auto& l = bench_matrix();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sparse::transpose(l));
  }
}
BENCHMARK(BM_CscTranspose);

// ---- plan persistence: analyze vs serialize vs load ------------------------

void BM_PlanSerialize_Zerocopy(benchmark::State& state) {
  const core::SolverPlan plan =
      core::SolverPlan::analyze(
          bench_matrix(), core::registry::options_for("mg-zerocopy").value())
          .value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(plan.serialize());
  }
  state.SetItemsProcessed(state.iterations() * bench_matrix().nnz());
}
BENCHMARK(BM_PlanSerialize_Zerocopy);

void BM_PlanDeserialize_Zerocopy(benchmark::State& state) {
  const core::SolveOptions o =
      core::registry::options_for("mg-zerocopy").value();
  const auto blob =
      core::SolverPlan::analyze(bench_matrix(), o)->serialize().value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::SolverPlan::deserialize(blob, o));
  }
  state.SetItemsProcessed(state.iterations() * bench_matrix().nnz());
}
BENCHMARK(BM_PlanDeserialize_Zerocopy);

// ---- fused vs looped solve_batch: the tentpole amortization. ---------------
// One dependency resolution + one structure sweep per batch (fused) against
// num_rhs independent solves (looped). Host backends run on the persistent
// plan workspace either way, so the delta isolates the fusion itself.

const std::vector<value_t>& batch16() {
  static const std::vector<value_t> batch = [] {
    const auto& l = bench_matrix();
    std::vector<value_t> out;
    for (index_t j = 0; j < 16; ++j) {
      const std::vector<value_t> b = sparse::gen_rhs_for_solution(
          l, sparse::gen_solution(l.rows, 500 + static_cast<std::uint64_t>(j)));
      out.insert(out.end(), b.begin(), b.end());
    }
    return out;
  }();
  return batch;
}

core::SolverPlan batch_plan(const std::string& key, bool fused) {
  core::SolveOptions o = core::registry::options_for(key).value();
  o.cpu_threads = 2;
  o.fuse_batch = fused;
  return core::SolverPlan::analyze(bench_matrix(), o).value();
}

void BM_SolveBatch(benchmark::State& state, const char* key, bool fused) {
  const auto plan = batch_plan(key, fused);
  const index_t k = static_cast<index_t>(state.range(0));
  const auto batch = std::span<const value_t>(batch16())
                         .first(static_cast<std::size_t>(k * plan.rows()));
  for (auto _ : state) {
    benchmark::DoNotOptimize(plan.solve_batch(batch, k));
  }
  state.SetItemsProcessed(state.iterations() * bench_matrix().nnz() * k);
}
BENCHMARK_CAPTURE(BM_SolveBatch, Fused_CpuLevelSet, "cpu-levelset", true)
    ->Arg(1)->Arg(4)->Arg(16);
BENCHMARK_CAPTURE(BM_SolveBatch, Looped_CpuLevelSet, "cpu-levelset", false)
    ->Arg(1)->Arg(4)->Arg(16);
BENCHMARK_CAPTURE(BM_SolveBatch, Fused_CpuSyncFree, "cpu-syncfree", true)
    ->Arg(1)->Arg(4)->Arg(16);
BENCHMARK_CAPTURE(BM_SolveBatch, Looped_CpuSyncFree, "cpu-syncfree", false)
    ->Arg(1)->Arg(4)->Arg(16);
BENCHMARK_CAPTURE(BM_SolveBatch, Fused_Serial, "serial", true)
    ->Arg(1)->Arg(4)->Arg(16);

// Plan re-solve on the persistent workspace (the "no thread spawn, no O(n)
// zeroing per call" acceptance check -- compare against the PR 1 numbers
// of BM_PlanSolve_CpuSyncFree / the one-shot variants above).
void BM_PlanSolve_CpuLevelSet(benchmark::State& state) {
  const auto& l = bench_matrix();
  const auto& b = bench_rhs();
  core::SolveOptions o = core::registry::options_for("cpu-levelset").value();
  o.cpu_threads = 2;
  const core::SolverPlan plan = core::SolverPlan::analyze(l, o).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(plan.solve(b));
  }
  state.SetItemsProcessed(state.iterations() * l.nnz());
}
BENCHMARK(BM_PlanSolve_CpuLevelSet);

// Budget-check tax: same plan solve with an ARMED (generous, never-firing)
// execution budget. The no-budget baselines above pass a null token to the
// kernels -- one branch per level/claim boundary -- while these pay the
// strided clock reads too. Compare against BM_PlanSolve_{CpuSyncFree,
// CpuLevelSet}; main() gates the pairing below.
void BM_PlanSolve_BudgetArmed(benchmark::State& state, const char* key) {
  const auto& l = bench_matrix();
  const auto& b = bench_rhs();
  core::SolveOptions o = core::registry::options_for(key).value();
  o.cpu_threads = 2;
  o.time_budget = 3600.0;  // armed, never fires
  const core::SolverPlan plan = core::SolverPlan::analyze(l, o).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(plan.solve(b));
  }
  state.SetItemsProcessed(state.iterations() * l.nnz());
}
BENCHMARK_CAPTURE(BM_PlanSolve_BudgetArmed, CpuSyncFree, "cpu-syncfree");
BENCHMARK_CAPTURE(BM_PlanSolve_BudgetArmed, CpuLevelSet, "cpu-levelset");

// ---- BENCH_batch.json ------------------------------------------------------

struct BatchCase {
  std::string backend;
  index_t num_rhs;
  double looped_per_rhs_us;
  double fused_per_rhs_us;
  const char* unit;  // "wall" (host) or "sim" (simulated machine)
};

/// Per-batch metric in us: simulated backends report deterministic
/// simulated time (one run suffices); host backends take the best wall
/// time over a few repetitions.
double batch_metric_us(const core::SolverPlan& plan,
                       std::span<const value_t> batch, index_t k) {
  if (core::is_simulated(plan.options().backend)) {
    return plan.solve_batch(batch, k).value().report.solve_us;
  }
  double best = 1e300;
  for (int rep = 0; rep < 5; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    const auto r = plan.solve_batch(batch, k);
    const double us = std::chrono::duration<double, std::micro>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    if (!r.ok()) {
      std::fprintf(stderr, "batch solve failed: %s\n", r.message().c_str());
      std::exit(3);
    }
    best = std::min(best, us);
  }
  return best;
}

int write_batch_json() {
  const char* path_env = std::getenv("MSPTRSV_BENCH_JSON");
  const std::string path = path_env ? path_env : "BENCH_batch.json";
  const auto& l = bench_matrix();

  std::vector<BatchCase> cases;
  for (const char* key : {"serial", "cpu-levelset", "cpu-syncfree",
                          "gpu-levelset", "mg-zerocopy"}) {
    const core::SolverPlan fused = batch_plan(key, true);
    const core::SolverPlan looped = batch_plan(key, false);
    const bool sim = core::is_simulated(fused.options().backend);
    for (index_t k : {1, 4, 16}) {
      const auto batch = std::span<const value_t>(batch16())
                             .first(static_cast<std::size_t>(k) *
                                    static_cast<std::size_t>(l.rows));
      BatchCase c;
      c.backend = key;
      c.num_rhs = k;
      c.looped_per_rhs_us = batch_metric_us(looped, batch, k) / k;
      c.fused_per_rhs_us = batch_metric_us(fused, batch, k) / k;
      c.unit = sim ? "sim" : "wall";
      cases.push_back(c);
    }
  }

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 3;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"solve_batch fused vs looped\",\n"
               "  \"matrix\": {\"rows\": %d, \"nnz\": %lld},\n"
               "  \"cpu_threads\": 2,\n  \"cases\": [\n",
               l.rows, static_cast<long long>(l.nnz()));
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const BatchCase& c = cases[i];
    std::fprintf(
        f,
        "    {\"backend\": \"%s\", \"num_rhs\": %d, \"unit\": \"%s\", "
        "\"looped_per_rhs_us\": %.3f, \"fused_per_rhs_us\": %.3f, "
        "\"speedup\": %.3f}%s\n",
        c.backend.c_str(), c.num_rhs, c.unit, c.looped_per_rhs_us,
        c.fused_per_rhs_us, c.looped_per_rhs_us / c.fused_per_rhs_us,
        i + 1 < cases.size() ? "," : "");
    std::printf("BENCH_batch %-13s rhs=%-2d  looped %9.1f us/rhs  fused "
                "%9.1f us/rhs  speedup %.2fx (%s)\n",
                c.backend.c_str(), c.num_rhs, c.looped_per_rhs_us,
                c.fused_per_rhs_us, c.looped_per_rhs_us / c.fused_per_rhs_us,
                c.unit);
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  return 0;
}

// ---- BENCH_plan_io.json ----------------------------------------------------
// Cold-start story of plan persistence: host wall time of SolverPlan
// analysis vs restoring the saved blob, on a deep low-locality matrix (the
// service shape: random dependency structure, so the analysis passes are
// cache-hostile while the blob restore streams at memcpy speed). Upper
// factors additionally fold the U->L reversal into analysis -- the ILU
// preconditioner case -- which is where persistence pays off hardest.

double best_us_of(const std::function<void()>& f, int reps) {
  double best = 1e300;
  for (int rep = 0; rep < reps; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    f();
    best = std::min(best, std::chrono::duration<double, std::micro>(
                              std::chrono::steady_clock::now() - t0)
                              .count());
  }
  return best;
}

int write_plan_io_json() {
  const char* path_env = std::getenv("MSPTRSV_BENCH_PLAN_IO_JSON");
  const std::string path = path_env ? path_env : "BENCH_plan_io.json";
  const std::string blob_path = path + ".plan.tmp";

  // Deep + locality 0: ~12 nnz/row of random far-away dependencies.
  const sparse::CscMatrix lower =
      sparse::gen_layered_dag(100000, 500, 1200000, 0.0, 99);
  const sparse::CscMatrix upper = sparse::transpose(lower);

  struct PlanIoCase {
    std::string backend;
    const char* factor;  // "lower" | "upper"
    double blob_mb;
    double analyze_us;
    double load_us;
  };
  std::vector<PlanIoCase> cases;

  for (const char* key :
       {"cpu-levelset", "cpu-syncfree", "gpu-levelset", "mg-zerocopy"}) {
    core::SolveOptions o = core::registry::options_for(key).value();
    o.cpu_threads = 2;
    for (const bool is_upper : {false, true}) {
      // Time the ANALYSIS, not a matrix copy: lower plans borrow the
      // in-memory factor (the service already holds it either way).
      // analyze_upper has no borrowed form -- its input is consumed by
      // the reversal -- so the upper path pays one O(nnz) copy, ~2% of
      // its reversal-dominated analysis.
      auto analyze_once = [&]() -> core::Expected<core::SolverPlan> {
        return is_upper
                   ? core::SolverPlan::analyze_upper(sparse::CscMatrix(upper), o)
                   : core::SolverPlan::analyze_borrowed(lower, o);
      };
      auto plan = analyze_once();
      if (!plan.ok()) {
        std::fprintf(stderr, "plan analyze failed: %s\n",
                     plan.message().c_str());
        return 3;
      }
      const auto blob = plan->serialize();
      if (!blob.ok()) {
        std::fprintf(stderr, "plan serialize failed: %s\n",
                     blob.message().c_str());
        return 3;
      }
      if (!support::write_file(blob_path, blob.value())) {
        std::fprintf(stderr, "cannot write %s\n", blob_path.c_str());
        return 3;
      }
      PlanIoCase c;
      c.backend = key;
      c.factor = is_upper ? "upper" : "lower";
      c.blob_mb = static_cast<double>(blob.value().size()) / 1e6;
      c.analyze_us = best_us_of([&] { auto p = analyze_once(); (void)p; }, 3);
      c.load_us = best_us_of(
          [&] {
            auto p = core::SolverPlan::load(blob_path, o);
            if (!p.ok()) {
              std::fprintf(stderr, "load failed: %s\n", p.message().c_str());
              std::exit(3);
            }
          },
          3);
      cases.push_back(c);
    }
  }
  std::remove(blob_path.c_str());

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 3;
  }
  auto geomean = [&](const char* factor) {
    double log_sum = 0.0;
    int n = 0;
    for (const PlanIoCase& c : cases) {
      if (std::string(c.factor) == factor) {
        log_sum += std::log(c.analyze_us / c.load_us);
        ++n;
      }
    }
    return n == 0 ? 0.0 : std::exp(log_sum / n);
  };
  std::fprintf(f,
               "{\n  \"bench\": \"plan analyze vs load (cold start)\",\n"
               "  \"matrix\": {\"rows\": %d, \"nnz\": %lld, \"levels\": 500, "
               "\"locality\": 0.0},\n"
               "  \"lower_speedup_geomean\": %.2f,\n"
               "  \"upper_speedup_geomean\": %.2f,\n  \"cases\": [\n",
               lower.rows, static_cast<long long>(lower.nnz()),
               geomean("lower"), geomean("upper"));
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const PlanIoCase& c = cases[i];
    std::fprintf(
        f,
        "    {\"backend\": \"%s\", \"factor\": \"%s\", \"blob_mb\": %.1f, "
        "\"analyze_us\": %.0f, \"load_us\": %.0f, \"speedup\": %.2f}%s\n",
        c.backend.c_str(), c.factor, c.blob_mb, c.analyze_us, c.load_us,
        c.analyze_us / c.load_us, i + 1 < cases.size() ? "," : "");
    std::printf("BENCH_plan_io %-13s %-5s  blob %6.1f MB  analyze %9.0f us  "
                "load %9.0f us  speedup %.2fx\n",
                c.backend.c_str(), c.factor, c.blob_mb, c.analyze_us,
                c.load_us, c.analyze_us / c.load_us);
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  return 0;
}

// ---- BENCH_budget.json -----------------------------------------------------
// Gate on the cancellation machinery's tax (ISSUE 7 acceptance): the
// budget checks the kernels grew must cost <= 1% on the DEFAULT path (no
// budget set, null token, one branch per boundary). Measured as the
// stronger statement: even the ARMED path (generous budget, strided clock
// reads live) must sit within 1% of the no-budget path, plus the
// machine's own same-code jitter.
//
// Statistic: PAIRED ratios, not independent minima. Each round times
// no-budget (A), then armed, then no-budget (B); the round's overhead
// ratio is armed / mean(A, B) -- the bracket cancels load drift within
// the round -- and the reported overhead is the MEDIAN across rounds,
// immune to any single scheduler hiccup. The noise floor is measured the
// same way on identical code (median of |A - B| / min(A, B)), and the
// gate is  median_overhead <= max(5%, 1% + noise)  -- the 5% floor keeps
// an unlucky CI box from flaking the build, while a real regression
// (say, a clock read moved inside the row loop) lands at tens of percent
// and cannot hide behind either term.

int write_budget_json() {
  const char* path_env = std::getenv("MSPTRSV_BENCH_BUDGET_JSON");
  const std::string path = path_env ? path_env : "BENCH_budget.json";
  const auto& l = bench_matrix();
  const auto& b = bench_rhs();

  struct BudgetCase {
    std::string backend;
    double inert_us;     // no budget: kernels see a null token
    double armed_us;     // time_budget = 3600s: checks live, never fire
    double noise_pct;    // median |A - B| / min on the identical inert path
    double overhead_pct; // median paired armed/inert - 1
  };
  std::vector<BudgetCase> cases;
  bool gate_ok = true;

  auto median = [](std::vector<double> v) {
    std::sort(v.begin(), v.end());
    const std::size_t n = v.size();
    return n % 2 == 1 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
  };

  for (const char* key : {"cpu-syncfree", "cpu-levelset"}) {
    core::SolveOptions o = core::registry::options_for(key).value();
    // Single worker: the boundary checks under test run identically, but
    // the measurement is not at the mercy of gang scheduling on a noisy
    // CI box -- multi-thread jitter would swamp a 1% signal.
    o.cpu_threads = 1;
    const core::SolverPlan inert = core::SolverPlan::analyze(l, o).value();
    o.time_budget = 3600.0;
    const core::SolverPlan armed = core::SolverPlan::analyze(l, o).value();

    constexpr int kRounds = 15;
    constexpr int kSolvesPerSample = 8;
    auto sample_us = [&](const core::SolverPlan& plan) {
      const auto t0 = std::chrono::steady_clock::now();
      for (int i = 0; i < kSolvesPerSample; ++i) {
        const auto r = plan.solve(b);
        if (!r.ok()) {
          std::fprintf(stderr, "budget-study solve failed: %s\n",
                       r.message().c_str());
          std::exit(3);
        }
      }
      return std::chrono::duration<double, std::micro>(
                 std::chrono::steady_clock::now() - t0)
          .count();
    };
    sample_us(inert);  // warm the pool + caches off the record
    sample_us(armed);

    std::vector<double> ratios, noises, inerts, armeds;
    for (int round = 0; round < kRounds; ++round) {
      const double a = sample_us(inert);
      const double mid = sample_us(armed);
      const double bb = sample_us(inert);
      ratios.push_back(mid / (0.5 * (a + bb)));
      noises.push_back(std::abs(a - bb) / std::min(a, bb));
      inerts.push_back(0.5 * (a + bb));
      armeds.push_back(mid);
    }
    BudgetCase c;
    c.backend = key;
    c.inert_us = median(inerts) / kSolvesPerSample;
    c.armed_us = median(armeds) / kSolvesPerSample;
    c.noise_pct = 100.0 * median(noises);
    c.overhead_pct = 100.0 * (median(ratios) - 1.0);
    if (c.overhead_pct > std::max(5.0, 1.0 + c.noise_pct)) gate_ok = false;
    cases.push_back(c);
  }

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 3;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"execution-budget check overhead\",\n"
               "  \"matrix\": {\"rows\": %d, \"nnz\": %lld},\n"
               "  \"cpu_threads\": 1,\n  \"gate\": \"median overhead <= "
               "max(5%%, 1%% + measured noise)\",\n  \"cases\": [\n",
               l.rows, static_cast<long long>(l.nnz()));
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const BudgetCase& c = cases[i];
    std::fprintf(f,
                 "    {\"backend\": \"%s\", \"no_budget_us\": %.2f, "
                 "\"armed_budget_us\": %.2f, \"overhead_pct\": %.2f, "
                 "\"noise_pct\": %.2f}%s\n",
                 c.backend.c_str(), c.inert_us, c.armed_us, c.overhead_pct,
                 c.noise_pct, i + 1 < cases.size() ? "," : "");
    std::printf("BENCH_budget %-13s no-budget %8.2f us  armed %8.2f us  "
                "overhead %+.2f%% (noise %.2f%%)\n",
                c.backend.c_str(), c.inert_us, c.armed_us, c.overhead_pct,
                c.noise_pct);
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  if (!gate_ok) {
    std::fprintf(stderr,
                 "budget-check overhead gate FAILED: armed budget costs more "
                 "than max(5%%, 1%% + noise) over the no-budget path "
                 "(see above)\n");
    return 4;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  const int rc_batch = write_batch_json();
  if (rc_batch != 0) return rc_batch;
  const int rc_budget = write_budget_json();
  if (rc_budget != 0) return rc_budget;
  return write_plan_io_json();
}
