// Micro-benchmarks (google-benchmark) of the real host backends and the
// hot substrate paths: these measure actual wall-clock on this machine,
// complementing the simulated figure benches.
//
// On top of the google-benchmark cases, main() runs the fused-vs-looped
// solve_batch comparison (1/4/16 rhs across representative backends) and
// writes it to BENCH_batch.json (override with MSPTRSV_BENCH_JSON) so
// future PRs can track the amortization trajectory machine-readably.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/msptrsv.hpp"
#include "support/trace.hpp"

using namespace msptrsv;

namespace {

const sparse::CscMatrix& bench_matrix() {
  static const sparse::CscMatrix m =
      sparse::gen_layered_dag(20000, 50, 120000, 0.5, 99);
  return m;
}

const std::vector<value_t>& bench_rhs() {
  static const std::vector<value_t> b = sparse::gen_rhs_for_solution(
      bench_matrix(), sparse::gen_solution(bench_matrix().rows, 5));
  return b;
}

void BM_SerialSolve(benchmark::State& state) {
  const auto& l = bench_matrix();
  const auto& b = bench_rhs();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::solve_lower_serial(l, b));
  }
  state.SetItemsProcessed(state.iterations() * l.nnz());
}
BENCHMARK(BM_SerialSolve);

void BM_CpuLevelSetSolve(benchmark::State& state) {
  const auto& l = bench_matrix();
  const auto& b = bench_rhs();
  const sparse::LevelAnalysis a = sparse::analyze_levels(l);
  const int threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::solve_lower_levelset_threads(l, b, a, threads));
  }
  state.SetItemsProcessed(state.iterations() * l.nnz());
}
BENCHMARK(BM_CpuLevelSetSolve)->Arg(1)->Arg(2)->Arg(4);

void BM_CpuSyncFreeSolve(benchmark::State& state) {
  const auto& l = bench_matrix();
  const auto& b = bench_rhs();
  const int threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::solve_lower_syncfree_threads(l, b, threads));
  }
  state.SetItemsProcessed(state.iterations() * l.nnz());
}
BENCHMARK(BM_CpuSyncFreeSolve)->Arg(1)->Arg(2)->Arg(4);

void BM_LevelAnalysis(benchmark::State& state) {
  const auto& l = bench_matrix();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sparse::analyze_levels(l));
  }
  state.SetItemsProcessed(state.iterations() * l.nnz());
}
BENCHMARK(BM_LevelAnalysis);

void BM_InDegreeCount(benchmark::State& state) {
  const auto& l = bench_matrix();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sparse::compute_in_degrees(l));
  }
  state.SetItemsProcessed(state.iterations() * l.nnz());
}
BENCHMARK(BM_InDegreeCount);

void BM_LayeredDagGenerator(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sparse::gen_layered_dag(10000, 40, 60000, 0.5, 7));
  }
}
BENCHMARK(BM_LayeredDagGenerator);

void BM_SimulatedZerocopy4Gpu(benchmark::State& state) {
  const auto& l = bench_matrix();
  const auto& b = bench_rhs();
  const core::SolveOptions o =
      core::registry::options_for("mg-zerocopy").value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::solve(l, b, o));
  }
  state.SetItemsProcessed(state.iterations() * l.nnz());
}
BENCHMARK(BM_SimulatedZerocopy4Gpu);

// ---- one-shot vs plan: the amortization the phase-split API exists for.
// The one-shot path re-runs validation + analysis every call; the plan
// path pays them once in analyze() and each iteration below is a pure
// solve. Per-iteration time must drop for the plan variants.

void BM_OneShotSolve_CpuSyncFree(benchmark::State& state) {
  const auto& l = bench_matrix();
  const auto& b = bench_rhs();
  core::SolveOptions o = core::registry::options_for("cpu-syncfree").value();
  o.cpu_threads = 2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::solve(l, b, o));
  }
  state.SetItemsProcessed(state.iterations() * l.nnz());
}
BENCHMARK(BM_OneShotSolve_CpuSyncFree);

void BM_PlanSolve_CpuSyncFree(benchmark::State& state) {
  const auto& l = bench_matrix();
  const auto& b = bench_rhs();
  core::SolveOptions o = core::registry::options_for("cpu-syncfree").value();
  o.cpu_threads = 2;
  const core::SolverPlan plan = core::SolverPlan::analyze(l, o).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(plan.solve(b));
  }
  state.SetItemsProcessed(state.iterations() * l.nnz());
}
BENCHMARK(BM_PlanSolve_CpuSyncFree);

void BM_OneShotSolve_Serial(benchmark::State& state) {
  const auto& l = bench_matrix();
  const auto& b = bench_rhs();
  const core::SolveOptions o = core::registry::options_for("serial").value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::solve(l, b, o));
  }
  state.SetItemsProcessed(state.iterations() * l.nnz());
}
BENCHMARK(BM_OneShotSolve_Serial);

void BM_PlanSolve_Serial(benchmark::State& state) {
  const auto& l = bench_matrix();
  const auto& b = bench_rhs();
  const core::SolverPlan plan =
      core::SolverPlan::analyze(l, core::registry::options_for("serial").value())
          .value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(plan.solve(b));
  }
  state.SetItemsProcessed(state.iterations() * l.nnz());
}
BENCHMARK(BM_PlanSolve_Serial);

void BM_PlanSolve_Zerocopy(benchmark::State& state) {
  const auto& l = bench_matrix();
  const auto& b = bench_rhs();
  const core::SolverPlan plan =
      core::SolverPlan::analyze(
          l, core::registry::options_for("mg-zerocopy").value())
          .value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(plan.solve(b));
  }
  state.SetItemsProcessed(state.iterations() * l.nnz());
}
BENCHMARK(BM_PlanSolve_Zerocopy);

void BM_PlanSolveBatch8_Serial(benchmark::State& state) {
  const auto& l = bench_matrix();
  const index_t num_rhs = 8;
  std::vector<value_t> batch;
  for (index_t j = 0; j < num_rhs; ++j) {
    const std::vector<value_t> b = sparse::gen_rhs_for_solution(
        l, sparse::gen_solution(l.rows, 100 + static_cast<std::uint64_t>(j)));
    batch.insert(batch.end(), b.begin(), b.end());
  }
  const core::SolverPlan plan =
      core::SolverPlan::analyze(l, core::registry::options_for("serial").value())
          .value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(plan.solve_batch(batch, num_rhs));
  }
  state.SetItemsProcessed(state.iterations() * l.nnz() * num_rhs);
}
BENCHMARK(BM_PlanSolveBatch8_Serial);

void BM_CscTranspose(benchmark::State& state) {
  const auto& l = bench_matrix();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sparse::transpose(l));
  }
}
BENCHMARK(BM_CscTranspose);

// ---- plan persistence: analyze vs serialize vs load ------------------------

void BM_PlanSerialize_Zerocopy(benchmark::State& state) {
  const core::SolverPlan plan =
      core::SolverPlan::analyze(
          bench_matrix(), core::registry::options_for("mg-zerocopy").value())
          .value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(plan.serialize());
  }
  state.SetItemsProcessed(state.iterations() * bench_matrix().nnz());
}
BENCHMARK(BM_PlanSerialize_Zerocopy);

void BM_PlanDeserialize_Zerocopy(benchmark::State& state) {
  const core::SolveOptions o =
      core::registry::options_for("mg-zerocopy").value();
  const auto blob =
      core::SolverPlan::analyze(bench_matrix(), o)->serialize().value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::SolverPlan::deserialize(blob, o));
  }
  state.SetItemsProcessed(state.iterations() * bench_matrix().nnz());
}
BENCHMARK(BM_PlanDeserialize_Zerocopy);

// ---- fused vs looped solve_batch: the tentpole amortization. ---------------
// One dependency resolution + one structure sweep per batch (fused) against
// num_rhs independent solves (looped). Host backends run on the persistent
// plan workspace either way, so the delta isolates the fusion itself.

const std::vector<value_t>& batch16() {
  static const std::vector<value_t> batch = [] {
    const auto& l = bench_matrix();
    std::vector<value_t> out;
    for (index_t j = 0; j < 16; ++j) {
      const std::vector<value_t> b = sparse::gen_rhs_for_solution(
          l, sparse::gen_solution(l.rows, 500 + static_cast<std::uint64_t>(j)));
      out.insert(out.end(), b.begin(), b.end());
    }
    return out;
  }();
  return batch;
}

core::SolverPlan batch_plan(const std::string& key, bool fused) {
  core::SolveOptions o = core::registry::options_for(key).value();
  o.cpu_threads = 2;
  o.fuse_batch = fused;
  return core::SolverPlan::analyze(bench_matrix(), o).value();
}

void BM_SolveBatch(benchmark::State& state, const char* key, bool fused) {
  const auto plan = batch_plan(key, fused);
  const index_t k = static_cast<index_t>(state.range(0));
  const auto batch = std::span<const value_t>(batch16())
                         .first(static_cast<std::size_t>(k * plan.rows()));
  for (auto _ : state) {
    benchmark::DoNotOptimize(plan.solve_batch(batch, k));
  }
  state.SetItemsProcessed(state.iterations() * bench_matrix().nnz() * k);
}
BENCHMARK_CAPTURE(BM_SolveBatch, Fused_CpuLevelSet, "cpu-levelset", true)
    ->Arg(1)->Arg(4)->Arg(16);
BENCHMARK_CAPTURE(BM_SolveBatch, Looped_CpuLevelSet, "cpu-levelset", false)
    ->Arg(1)->Arg(4)->Arg(16);
BENCHMARK_CAPTURE(BM_SolveBatch, Fused_CpuSyncFree, "cpu-syncfree", true)
    ->Arg(1)->Arg(4)->Arg(16);
BENCHMARK_CAPTURE(BM_SolveBatch, Looped_CpuSyncFree, "cpu-syncfree", false)
    ->Arg(1)->Arg(4)->Arg(16);
BENCHMARK_CAPTURE(BM_SolveBatch, Fused_Serial, "serial", true)
    ->Arg(1)->Arg(4)->Arg(16);

// Plan re-solve on the persistent workspace (the "no thread spawn, no O(n)
// zeroing per call" acceptance check -- compare against the PR 1 numbers
// of BM_PlanSolve_CpuSyncFree / the one-shot variants above).
void BM_PlanSolve_CpuLevelSet(benchmark::State& state) {
  const auto& l = bench_matrix();
  const auto& b = bench_rhs();
  core::SolveOptions o = core::registry::options_for("cpu-levelset").value();
  o.cpu_threads = 2;
  const core::SolverPlan plan = core::SolverPlan::analyze(l, o).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(plan.solve(b));
  }
  state.SetItemsProcessed(state.iterations() * l.nnz());
}
BENCHMARK(BM_PlanSolve_CpuLevelSet);

// Budget-check tax: same plan solve with an ARMED (generous, never-firing)
// execution budget. The no-budget baselines above pass a null token to the
// kernels -- one branch per level/claim boundary -- while these pay the
// strided clock reads too. Compare against BM_PlanSolve_{CpuSyncFree,
// CpuLevelSet}; main() gates the pairing below.
void BM_PlanSolve_BudgetArmed(benchmark::State& state, const char* key) {
  const auto& l = bench_matrix();
  const auto& b = bench_rhs();
  core::SolveOptions o = core::registry::options_for(key).value();
  o.cpu_threads = 2;
  o.time_budget = 3600.0;  // armed, never fires
  const core::SolverPlan plan = core::SolverPlan::analyze(l, o).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(plan.solve(b));
  }
  state.SetItemsProcessed(state.iterations() * l.nnz());
}
BENCHMARK_CAPTURE(BM_PlanSolve_BudgetArmed, CpuSyncFree, "cpu-syncfree");
BENCHMARK_CAPTURE(BM_PlanSolve_BudgetArmed, CpuLevelSet, "cpu-levelset");

// ---- BENCH_batch.json ------------------------------------------------------

struct BatchCase {
  std::string backend;
  index_t num_rhs;
  double looped_per_rhs_us;
  double fused_per_rhs_us;
  const char* unit;  // "wall" (host) or "sim" (simulated machine)
};

/// Per-batch metric in us: simulated backends report deterministic
/// simulated time (one run suffices); host backends take the best wall
/// time over a few repetitions.
double batch_metric_us(const core::SolverPlan& plan,
                       std::span<const value_t> batch, index_t k) {
  if (core::is_simulated(plan.options().backend)) {
    return plan.solve_batch(batch, k).value().report.solve_us;
  }
  double best = 1e300;
  for (int rep = 0; rep < 5; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    const auto r = plan.solve_batch(batch, k);
    const double us = std::chrono::duration<double, std::micro>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    if (!r.ok()) {
      std::fprintf(stderr, "batch solve failed: %s\n", r.message().c_str());
      std::exit(3);
    }
    best = std::min(best, us);
  }
  return best;
}

int write_batch_json() {
  const char* path_env = std::getenv("MSPTRSV_BENCH_JSON");
  const std::string path = path_env ? path_env : "BENCH_batch.json";
  const auto& l = bench_matrix();

  std::vector<BatchCase> cases;
  for (const char* key : {"serial", "cpu-levelset", "cpu-syncfree",
                          "gpu-levelset", "mg-zerocopy"}) {
    const core::SolverPlan fused = batch_plan(key, true);
    const core::SolverPlan looped = batch_plan(key, false);
    const bool sim = core::is_simulated(fused.options().backend);
    for (index_t k : {1, 4, 16}) {
      const auto batch = std::span<const value_t>(batch16())
                             .first(static_cast<std::size_t>(k) *
                                    static_cast<std::size_t>(l.rows));
      BatchCase c;
      c.backend = key;
      c.num_rhs = k;
      c.looped_per_rhs_us = batch_metric_us(looped, batch, k) / k;
      c.fused_per_rhs_us = batch_metric_us(fused, batch, k) / k;
      c.unit = sim ? "sim" : "wall";
      cases.push_back(c);
    }
  }

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 3;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"solve_batch fused vs looped\",\n"
               "  \"matrix\": {\"rows\": %d, \"nnz\": %lld},\n"
               "  \"cpu_threads\": 2,\n  \"cases\": [\n",
               l.rows, static_cast<long long>(l.nnz()));
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const BatchCase& c = cases[i];
    std::fprintf(
        f,
        "    {\"backend\": \"%s\", \"num_rhs\": %d, \"unit\": \"%s\", "
        "\"looped_per_rhs_us\": %.3f, \"fused_per_rhs_us\": %.3f, "
        "\"speedup\": %.3f}%s\n",
        c.backend.c_str(), c.num_rhs, c.unit, c.looped_per_rhs_us,
        c.fused_per_rhs_us, c.looped_per_rhs_us / c.fused_per_rhs_us,
        i + 1 < cases.size() ? "," : "");
    std::printf("BENCH_batch %-13s rhs=%-2d  looped %9.1f us/rhs  fused "
                "%9.1f us/rhs  speedup %.2fx (%s)\n",
                c.backend.c_str(), c.num_rhs, c.looped_per_rhs_us,
                c.fused_per_rhs_us, c.looped_per_rhs_us / c.fused_per_rhs_us,
                c.unit);
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  return 0;
}

// ---- BENCH_kernel.json -----------------------------------------------------
// The roofline study: SpTRSV is bandwidth-bound, so the honest yardstick
// for the host kernels is the GB/s they move against the machine's own
// streaming ceiling, not against the previous commit. Three parts:
//
//   1. stream_triad_gbps -- a STREAM-triad measurement (a = b + s*c over
//      arrays far larger than cache, one pass per thread slice) at the
//      same thread count the kernels run with: the bandwidth roof.
//   2. Per-kernel achieved GB/s at 16 RHS, both layouts, from a
//      LOWER-BOUND bytes-moved model (each structure/value/RHS byte
//      counted once; re-fetches make real traffic higher, so the printed
//      ceiling fraction is optimistic-for-the-hardware / honest-for-us).
//   3. The layout gate: interleaved vs column-major fused batch at
//      8/16/32 RHS on the level-set backend, paired-median noise-guarded
//      (bench_common). CI fails if interleaved is not >= 1.25x per rhs at
//      16 RHS, minus the measured noise allowance, on >= 4-thread boxes.

const sparse::CscMatrix& layout_matrix() {
  // Wider and shallower than bench_matrix(): 60 levels of ~667 components
  // at ~12 nnz/row keeps all gang workers fed, so the measurement reflects
  // kernel throughput rather than level-boundary latency.
  static const sparse::CscMatrix m =
      sparse::gen_layered_dag(40000, 60, 480000, 0.3, 99);
  return m;
}

const std::vector<value_t>& layout_batch32() {
  static const std::vector<value_t> batch = [] {
    const auto& l = layout_matrix();
    std::vector<value_t> out;
    for (index_t j = 0; j < 32; ++j) {
      const std::vector<value_t> b = sparse::gen_rhs_for_solution(
          l, sparse::gen_solution(l.rows, 900 + static_cast<std::uint64_t>(j)));
      out.insert(out.end(), b.begin(), b.end());
    }
    return out;
  }();
  return batch;
}

int kernel_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return static_cast<int>(std::min(4u, std::max(1u, hw)));
}

/// STREAM triad at `threads` workers: best-of-reps GB/s of a = b + s*c.
double stream_triad_gbps(int threads) {
  constexpr std::size_t kN = 1u << 22;  // 4M doubles = 32 MB per array
  std::vector<double> a(kN, 0.0), b(kN, 1.0), c(kN, 2.0);
  auto pass = [&](int reps_inner) {
    const auto t0 = std::chrono::steady_clock::now();
    for (int rep = 0; rep < reps_inner; ++rep) {
      std::vector<std::thread> ts;
      const std::size_t slice = kN / static_cast<std::size_t>(threads);
      for (int t = 0; t < threads; ++t) {
        const std::size_t lo = static_cast<std::size_t>(t) * slice;
        const std::size_t hi = t + 1 == threads ? kN : lo + slice;
        ts.emplace_back([&, lo, hi] {
          for (std::size_t i = lo; i < hi; ++i) a[i] = b[i] + 3.0 * c[i];
        });
      }
      for (auto& t : ts) t.join();
    }
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
        .count();
  };
  pass(1);  // first touch + warm
  double best_s = 1e300;
  for (int rep = 0; rep < 5; ++rep) best_s = std::min(best_s, pass(1));
  // 3 arrays x 8 bytes per element per pass (write-allocate traffic on
  // `a` is real but not counted -- STREAM convention).
  return 3.0 * 8.0 * static_cast<double>(kN) / best_s / 1e9;
}

/// Lower-bound bytes one fused k-RHS solve must move: structure + values
/// once, every RHS element once through gather/b/x.
double solve_bytes_model(const sparse::CscMatrix& l, index_t k) {
  const auto n = static_cast<double>(l.rows);
  const auto nnz = static_cast<double>(l.nnz());
  const double kd = static_cast<double>(k);
  const double structure = (n + 1) * sizeof(offset_t) +  // row_ptr
                           nnz * sizeof(index_t) +       // col_idx
                           nnz * sizeof(value_t);        // values
  const double rhs = (nnz - n) * kd * sizeof(value_t) +  // x gathers
                     n * kd * sizeof(value_t) +          // b reads
                     n * kd * sizeof(value_t);           // x writes
  return structure + rhs;
}

core::SolverPlan layout_plan(const char* key, core::RhsLayout layout,
                             int threads) {
  core::SolveOptions o = core::registry::options_for(key).value();
  o.cpu_threads = threads;
  o.rhs_layout = layout;
  return core::SolverPlan::analyze(layout_matrix(), o).value();
}

double solve_batch_us(const core::SolverPlan& plan,
                      std::span<const value_t> batch, index_t k) {
  const auto t0 = std::chrono::steady_clock::now();
  const auto r = plan.solve_batch(batch, k);
  if (!r.ok()) {
    std::fprintf(stderr, "kernel-study solve failed: %s\n",
                 r.message().c_str());
    std::exit(3);
  }
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

int write_kernel_json() {
  const char* path_env = std::getenv("MSPTRSV_BENCH_KERNEL_JSON");
  const std::string path = path_env ? path_env : "BENCH_kernel.json";
  const auto& l = layout_matrix();
  const int threads = kernel_threads();
  const unsigned hw = std::thread::hardware_concurrency();

  const double ceiling = stream_triad_gbps(threads);
  std::printf("BENCH_kernel STREAM triad ceiling %.1f GB/s (%d threads)\n",
              ceiling, threads);

  // Part 2: achieved GB/s per kernel at 16 RHS, both layouts.
  struct RooflineCase {
    std::string backend;
    std::string layout;
    double solve_us;
    double achieved_gbps;
  };
  std::vector<RooflineCase> roofline;
  const index_t k16 = 16;
  const auto batch16_span =
      std::span<const value_t>(layout_batch32())
          .first(static_cast<std::size_t>(k16) *
                 static_cast<std::size_t>(l.rows));
  const double bytes16 = solve_bytes_model(l, k16);
  for (const char* key : {"serial", "cpu-levelset", "cpu-syncfree"}) {
    for (const core::RhsLayout layout :
         {core::RhsLayout::kInterleaved, core::RhsLayout::kColumnMajor}) {
      const core::SolverPlan plan = layout_plan(key, layout, threads);
      solve_batch_us(plan, batch16_span, k16);  // warm
      double best = 1e300;
      for (int rep = 0; rep < 5; ++rep) {
        best = std::min(best, solve_batch_us(plan, batch16_span, k16));
      }
      RooflineCase c;
      c.backend = key;
      c.layout = core::rhs_layout_name(layout);
      c.solve_us = best;
      c.achieved_gbps = bytes16 / best / 1e3;  // bytes/us -> GB/s
      roofline.push_back(c);
      std::printf("BENCH_kernel %-13s %-12s rhs=16  %9.1f us  %6.2f GB/s  "
                  "(%.0f%% of ceiling)\n",
                  c.backend.c_str(), c.layout.c_str(), c.solve_us,
                  c.achieved_gbps, 100.0 * c.achieved_gbps / ceiling);
    }
  }

  // Part 3: the gated layout study. Paired and noise-guarded: baseline
  // samples the INTERLEAVED plan, candidate the column-major one, so
  // overhead_pct is "how much slower column-major is" -- the interleaved
  // speedup, in percent.
  struct LayoutCase {
    index_t num_rhs;
    double interleaved_us;
    double column_major_us;
    double speedup_pct;
    double noise_pct;
    bool gated;
  };
  std::vector<LayoutCase> layout_cases;
  bool gate_ok = true;
  const bool gate_applies = hw >= 4;
  for (const index_t k : {index_t{8}, index_t{16}, index_t{32}}) {
    const auto batch = std::span<const value_t>(layout_batch32())
                           .first(static_cast<std::size_t>(k) *
                                  static_cast<std::size_t>(l.rows));
    const core::SolverPlan inter =
        layout_plan("cpu-levelset", core::RhsLayout::kInterleaved, threads);
    const core::SolverPlan colmaj =
        layout_plan("cpu-levelset", core::RhsLayout::kColumnMajor, threads);
    solve_batch_us(inter, batch, k);  // warm pools + caches
    solve_batch_us(colmaj, batch, k);
    const bench::PairedStudy study = bench::paired_median_study(
        [&] { return solve_batch_us(inter, batch, k); },
        [&] { return solve_batch_us(colmaj, batch, k); }, 11);
    LayoutCase c;
    c.num_rhs = k;
    c.interleaved_us = study.baseline_us;
    c.column_major_us = study.candidate_us;
    c.speedup_pct = study.overhead_pct;
    c.noise_pct = study.noise_pct;
    c.gated = gate_applies && k == 16;
    // Gate: interleaved >= 1.25x per rhs at 16 RHS, minus the noise
    // allowance (but never more than a 5-point discount).
    if (c.gated && c.speedup_pct < 25.0 - std::min(5.0, c.noise_pct)) {
      gate_ok = false;
    }
    layout_cases.push_back(c);
    std::printf("BENCH_kernel layout rhs=%-2d  interleaved %9.1f us  "
                "column-major %9.1f us  speedup %+.1f%% (noise %.1f%%)%s\n",
                c.num_rhs, c.interleaved_us, c.column_major_us, c.speedup_pct,
                c.noise_pct, c.gated ? "  [gated]" : "");
  }

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 3;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"host kernel roofline + rhs layout\",\n"
               "  \"matrix\": {\"rows\": %d, \"nnz\": %lld, \"levels\": 60},\n"
               "  \"cpu_threads\": %d,\n"
               "  \"hardware_threads\": %u,\n"
               "  \"stream_triad_gbps\": %.2f,\n"
               "  \"bytes_model\": \"structure once + every rhs element once "
               "(lower bound)\",\n"
               "  \"gate\": \"interleaved >= 1.25x column-major per rhs at 16 "
               "RHS minus min(5%%, noise), on >= 4-thread machines\",\n"
               "  \"roofline\": [\n",
               l.rows, static_cast<long long>(l.nnz()), threads, hw, ceiling);
  for (std::size_t i = 0; i < roofline.size(); ++i) {
    const RooflineCase& c = roofline[i];
    std::fprintf(f,
                 "    {\"backend\": \"%s\", \"layout\": \"%s\", \"num_rhs\": "
                 "16, \"solve_us\": %.1f, \"achieved_gbps\": %.2f, "
                 "\"ceiling_fraction\": %.3f}%s\n",
                 c.backend.c_str(), c.layout.c_str(), c.solve_us,
                 c.achieved_gbps, c.achieved_gbps / ceiling,
                 i + 1 < roofline.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"layout_cases\": [\n");
  for (std::size_t i = 0; i < layout_cases.size(); ++i) {
    const LayoutCase& c = layout_cases[i];
    std::fprintf(f,
                 "    {\"backend\": \"cpu-levelset\", \"num_rhs\": %d, "
                 "\"interleaved_us\": %.1f, \"column_major_us\": %.1f, "
                 "\"speedup_pct\": %.1f, \"noise_pct\": %.1f, "
                 "\"gated\": %s}%s\n",
                 c.num_rhs, c.interleaved_us, c.column_major_us,
                 c.speedup_pct, c.noise_pct, c.gated ? "true" : "false",
                 i + 1 < layout_cases.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  if (!gate_ok) {
    std::fprintf(stderr,
                 "layout gate FAILED: the interleaved fused batch is not "
                 ">= 1.25x the column-major path per rhs at 16 RHS "
                 "(see above)\n");
    return 4;
  }
  return 0;
}

// ---- BENCH_plan_io.json ----------------------------------------------------
// Cold-start story of plan persistence: host wall time of SolverPlan
// analysis vs restoring the saved blob, on a deep low-locality matrix (the
// service shape: random dependency structure, so the analysis passes are
// cache-hostile while the blob restore streams at memcpy speed). Upper
// factors additionally fold the U->L reversal into analysis -- the ILU
// preconditioner case -- which is where persistence pays off hardest.

double best_us_of(const std::function<void()>& f, int reps) {
  double best = 1e300;
  for (int rep = 0; rep < reps; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    f();
    best = std::min(best, std::chrono::duration<double, std::micro>(
                              std::chrono::steady_clock::now() - t0)
                              .count());
  }
  return best;
}

int write_plan_io_json() {
  const char* path_env = std::getenv("MSPTRSV_BENCH_PLAN_IO_JSON");
  const std::string path = path_env ? path_env : "BENCH_plan_io.json";
  const std::string blob_path = path + ".plan.tmp";

  // Deep + locality 0: ~12 nnz/row of random far-away dependencies.
  const sparse::CscMatrix lower =
      sparse::gen_layered_dag(100000, 500, 1200000, 0.0, 99);
  const sparse::CscMatrix upper = sparse::transpose(lower);

  struct PlanIoCase {
    std::string backend;
    const char* factor;  // "lower" | "upper"
    double blob_mb;
    double fat_mb = 0.0;       // v2 + include_row_form (host backends only)
    double fat_load_us = 0.0;  // restore time of the fat blob (ditto)
    double restore_gbps = 0.0; // bytes materialized by load / load time
    double analyze_us;
    double load_us;
  };
  std::vector<PlanIoCase> cases;
  bool gate_ok = true;
  std::string gate_failures;

  // Restore-cost gate for the lean format: it trades stored row-form
  // bytes for an O(nnz) rebuild at load, and that rebuild must stay a
  // memory-speed transpose, not creep toward analysis. Judged two
  // machine-relative ways (an absolute GB/s floor flakes on slow boxes):
  //  1. lean load <= kLeanLoadMaxVsFat x the FAT load of the same plan on
  //     the same machine -- the fat blob reads double the value payload
  //     but rebuilds nothing, so the ratio isolates exactly the rebuild
  //     cost the lean trade added. The bound is 3x: the measured ratio is
  //     ~1.5-2.2x across machines (the scatter transpose costs more than
  //     the saved blob IO on slow single-channel boxes, and that is fine
  //     -- the format exists to halve resident blob bytes), while a
  //     regression that re-runs analysis at load lands at 6x+ on the
  //     upper factor;
  //  2. upper-factor loads must stay >= 2x faster than analyze_upper --
  //     the reversal-dominated analysis persistence exists to skip.
  //     (Lower-factor analysis is itself a near-memory-speed pass, so its
  //     load/analyze ratio hovers around 1x BY DESIGN and is reported,
  //     not gated; the design target for restore_gbps is the ~10 GB/s
  //     memcpy ceiling derated by the transpose's random scatter.)
  constexpr double kLeanLoadMaxVsFat = 3.0;

  for (const char* key :
       {"cpu-levelset", "cpu-syncfree", "gpu-levelset", "mg-zerocopy"}) {
    core::SolveOptions o = core::registry::options_for(key).value();
    o.cpu_threads = 2;
    for (const bool is_upper : {false, true}) {
      // Time the ANALYSIS, not a matrix copy: lower plans borrow the
      // in-memory factor (the service already holds it either way).
      // analyze_upper has no borrowed form -- its input is consumed by
      // the reversal -- so the upper path pays one O(nnz) copy, ~2% of
      // its reversal-dominated analysis.
      auto analyze_once = [&]() -> core::Expected<core::SolverPlan> {
        return is_upper
                   ? core::SolverPlan::analyze_upper(sparse::CscMatrix(upper), o)
                   : core::SolverPlan::analyze_borrowed(lower, o);
      };
      auto plan = analyze_once();
      if (!plan.ok()) {
        std::fprintf(stderr, "plan analyze failed: %s\n",
                     plan.message().c_str());
        return 3;
      }
      const auto blob = plan->serialize();
      if (!blob.ok()) {
        std::fprintf(stderr, "plan serialize failed: %s\n",
                     blob.message().c_str());
        return 3;
      }
      if (!support::write_file(blob_path, blob.value())) {
        std::fprintf(stderr, "cannot write %s\n", blob_path.c_str());
        return 3;
      }
      PlanIoCase c;
      c.backend = key;
      c.factor = is_upper ? "upper" : "lower";
      c.blob_mb = static_cast<double>(blob.value().size()) / 1e6;
      const bool host_parallel =
          std::string(key) == "cpu-levelset" || std::string(key) == "cpu-syncfree";
      if (host_parallel) {
        // The fat (row-form-carrying) variant the lean format replaced:
        // the size delta is the doubled value payload v2 stopped paying.
        core::SnapshotWriteOptions fat;
        fat.include_row_form = true;
        const auto fat_blob = plan->serialize(fat);
        if (!fat_blob.ok()) {
          std::fprintf(stderr, "fat serialize failed: %s\n",
                       fat_blob.message().c_str());
          return 3;
        }
        c.fat_mb = static_cast<double>(fat_blob.value().size()) / 1e6;
        if (c.blob_mb >= c.fat_mb) {
          gate_ok = false;
          gate_failures += std::string(" [") + key +
                           ": lean blob is not smaller than the fat one]";
        }
        const std::string fat_path = blob_path + ".fat";
        if (!support::write_file(fat_path, fat_blob.value())) {
          std::fprintf(stderr, "cannot write %s\n", fat_path.c_str());
          return 3;
        }
        c.fat_load_us = best_us_of(
            [&] {
              auto p = core::SolverPlan::load(fat_path, o);
              if (!p.ok()) {
                std::fprintf(stderr, "fat load failed: %s\n",
                             p.message().c_str());
                std::exit(3);
              }
            },
            3);
        std::remove(fat_path.c_str());
      }
      c.analyze_us = best_us_of([&] { auto p = analyze_once(); (void)p; }, 3);
      c.load_us = best_us_of(
          [&] {
            auto p = core::SolverPlan::load(blob_path, o);
            if (!p.ok()) {
              std::fprintf(stderr, "load failed: %s\n", p.message().c_str());
              std::exit(3);
            }
          },
          3);
      // Bytes the load materializes: the blob itself plus, for the lean
      // host blobs, the rebuilt row form (ptr + idx + val).
      double restored_bytes = static_cast<double>(blob.value().size());
      if (host_parallel) {
        restored_bytes +=
            static_cast<double>(lower.rows + 1) * sizeof(offset_t) +
            static_cast<double>(lower.nnz()) *
                (sizeof(index_t) + sizeof(value_t));
      }
      c.restore_gbps = restored_bytes / c.load_us / 1e3;  // bytes/us -> GB/s
      if (host_parallel && c.load_us > kLeanLoadMaxVsFat * c.fat_load_us) {
        gate_ok = false;
        gate_failures += std::string(" [") + key + "/" + c.factor +
                         ": lean load exceeds " +
                         std::to_string(kLeanLoadMaxVsFat) +
                         "x the fat-blob load (row-form rebuild too slow)]";
      }
      if (is_upper && c.load_us > c.analyze_us / 2.0) {
        gate_ok = false;
        gate_failures += std::string(" [") + key + "/" + c.factor +
                         ": load is not >= 2x faster than analyze]";
      }
      cases.push_back(c);
    }
  }
  std::remove(blob_path.c_str());

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 3;
  }
  auto geomean = [&](const char* factor) {
    double log_sum = 0.0;
    int n = 0;
    for (const PlanIoCase& c : cases) {
      if (std::string(c.factor) == factor) {
        log_sum += std::log(c.analyze_us / c.load_us);
        ++n;
      }
    }
    return n == 0 ? 0.0 : std::exp(log_sum / n);
  };
  std::fprintf(f,
               "{\n  \"bench\": \"plan analyze vs load (cold start)\",\n"
               "  \"matrix\": {\"rows\": %d, \"nnz\": %lld, \"levels\": 500, "
               "\"locality\": 0.0},\n"
               "  \"gates\": \"lean blob < fat blob; lean load <= %.1fx fat "
               "load (host backends); upper load >= 2x faster than "
               "analyze\",\n"
               "  \"lower_speedup_geomean\": %.2f,\n"
               "  \"upper_speedup_geomean\": %.2f,\n  \"cases\": [\n",
               lower.rows, static_cast<long long>(lower.nnz()),
               kLeanLoadMaxVsFat, geomean("lower"), geomean("upper"));
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const PlanIoCase& c = cases[i];
    std::fprintf(
        f,
        "    {\"backend\": \"%s\", \"factor\": \"%s\", \"blob_mb\": %.1f, "
        "\"fat_blob_mb\": %.1f, \"fat_load_us\": %.0f, "
        "\"restore_gbps\": %.2f, "
        "\"analyze_us\": %.0f, \"load_us\": %.0f, \"speedup\": %.2f}%s\n",
        c.backend.c_str(), c.factor, c.blob_mb, c.fat_mb, c.fat_load_us,
        c.restore_gbps, c.analyze_us, c.load_us, c.analyze_us / c.load_us,
        i + 1 < cases.size() ? "," : "");
    std::printf("BENCH_plan_io %-13s %-5s  blob %6.1f MB (fat %5.1f)  "
                "analyze %9.0f us  load %9.0f us (fat %6.0f)  "
                "speedup %.2fx  restore %5.2f GB/s\n",
                c.backend.c_str(), c.factor, c.blob_mb, c.fat_mb,
                c.analyze_us, c.load_us, c.fat_load_us,
                c.analyze_us / c.load_us, c.restore_gbps);
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  if (!gate_ok) {
    std::fprintf(stderr, "plan-io gates FAILED:%s\n", gate_failures.c_str());
    return 4;
  }
  return 0;
}

// ---- BENCH_budget.json -----------------------------------------------------
// Gate on the cancellation machinery's tax (ISSUE 7 acceptance): the
// budget checks the kernels grew must cost <= 1% on the DEFAULT path (no
// budget set, null token, one branch per boundary). Measured as the
// stronger statement: even the ARMED path (generous budget, strided clock
// reads live) must sit within 1% of the no-budget path, plus the
// machine's own same-code jitter.
//
// Statistic: bench::paired_median_study (bracketed rounds, median paired
// ratios, measured same-code noise floor; see bench_common.hpp). The gate
// is  median_overhead <= max(5%, 1% + noise)  -- the 5% floor keeps an
// unlucky CI box from flaking the build, while a real regression (say, a
// clock read moved inside the row loop) lands at tens of percent and
// cannot hide behind either term.

int write_budget_json() {
  const char* path_env = std::getenv("MSPTRSV_BENCH_BUDGET_JSON");
  const std::string path = path_env ? path_env : "BENCH_budget.json";
  const auto& l = bench_matrix();
  const auto& b = bench_rhs();

  struct BudgetCase {
    std::string backend;
    double inert_us;     // no budget: kernels see a null token
    double armed_us;     // time_budget = 3600s: checks live, never fire
    double noise_pct;    // median |A - B| / min on the identical inert path
    double overhead_pct; // median paired armed/inert - 1
  };
  std::vector<BudgetCase> cases;
  bool gate_ok = true;

  for (const char* key : {"cpu-syncfree", "cpu-levelset"}) {
    core::SolveOptions o = core::registry::options_for(key).value();
    // Single worker: the boundary checks under test run identically, but
    // the measurement is not at the mercy of gang scheduling on a noisy
    // CI box -- multi-thread jitter would swamp a 1% signal.
    o.cpu_threads = 1;
    const core::SolverPlan inert = core::SolverPlan::analyze(l, o).value();
    o.time_budget = 3600.0;
    const core::SolverPlan armed = core::SolverPlan::analyze(l, o).value();

    constexpr int kRounds = 15;
    constexpr int kSolvesPerSample = 8;
    auto sample_us = [&](const core::SolverPlan& plan) {
      const auto t0 = std::chrono::steady_clock::now();
      for (int i = 0; i < kSolvesPerSample; ++i) {
        const auto r = plan.solve(b);
        if (!r.ok()) {
          std::fprintf(stderr, "budget-study solve failed: %s\n",
                       r.message().c_str());
          std::exit(3);
        }
      }
      return std::chrono::duration<double, std::micro>(
                 std::chrono::steady_clock::now() - t0)
          .count();
    };
    sample_us(inert);  // warm the pool + caches off the record
    sample_us(armed);

    const bench::PairedStudy study = bench::paired_median_study(
        [&] { return sample_us(inert); }, [&] { return sample_us(armed); },
        kRounds);
    BudgetCase c;
    c.backend = key;
    c.inert_us = study.baseline_us / kSolvesPerSample;
    c.armed_us = study.candidate_us / kSolvesPerSample;
    c.noise_pct = study.noise_pct;
    c.overhead_pct = study.overhead_pct;
    if (c.overhead_pct > std::max(5.0, 1.0 + c.noise_pct)) gate_ok = false;
    cases.push_back(c);
  }

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 3;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"execution-budget check overhead\",\n"
               "  \"matrix\": {\"rows\": %d, \"nnz\": %lld},\n"
               "  \"cpu_threads\": 1,\n  \"gate\": \"median overhead <= "
               "max(5%%, 1%% + measured noise)\",\n  \"cases\": [\n",
               l.rows, static_cast<long long>(l.nnz()));
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const BudgetCase& c = cases[i];
    std::fprintf(f,
                 "    {\"backend\": \"%s\", \"no_budget_us\": %.2f, "
                 "\"armed_budget_us\": %.2f, \"overhead_pct\": %.2f, "
                 "\"noise_pct\": %.2f}%s\n",
                 c.backend.c_str(), c.inert_us, c.armed_us, c.overhead_pct,
                 c.noise_pct, i + 1 < cases.size() ? "," : "");
    std::printf("BENCH_budget %-13s no-budget %8.2f us  armed %8.2f us  "
                "overhead %+.2f%% (noise %.2f%%)\n",
                c.backend.c_str(), c.inert_us, c.armed_us, c.overhead_pct,
                c.noise_pct);
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  if (!gate_ok) {
    std::fprintf(stderr,
                 "budget-check overhead gate FAILED: armed budget costs more "
                 "than max(5%%, 1%% + noise) over the no-budget path "
                 "(see above)\n");
    return 4;
  }
  return 0;
}

// ---- BENCH_trace.json ------------------------------------------------------
// Gate on the tracing layer's tax (ISSUE 9 acceptance): ARMED span
// recording -- every macro site live, kernel leaders emitting per-level /
// per-sweep spans into their rings -- must sit within 3% of the disarmed
// path (whose cost is one relaxed load per site), plus the machine's own
// same-code jitter. Same statistic and flake guard as the budget study:
// median paired ratios over bracketed rounds, gate
// median_overhead <= max(5%, 3% + noise).
//
// Also writes trace_sample.json -- the armed run's collected span
// document -- which CI validates with scripts/check_trace.py, so the
// Perfetto-loadable shape is pinned by the build, not just by unit tests.

int write_trace_json() {
  const char* path_env = std::getenv("MSPTRSV_BENCH_TRACE_JSON");
  const std::string path = path_env ? path_env : "BENCH_trace.json";
  const char* sample_env = std::getenv("MSPTRSV_BENCH_TRACE_SAMPLE");
  const std::string sample_path = sample_env ? sample_env : "trace_sample.json";
  const auto& l = bench_matrix();
  const auto& b = bench_rhs();

  struct TraceCase {
    std::string backend;
    double disarmed_us;
    double armed_us;
    double noise_pct;
    double overhead_pct;
  };
  std::vector<TraceCase> cases;
  bool gate_ok = true;
  const bool compiled = support::trace::trace_compiled();

  for (const char* key : {"cpu-syncfree", "cpu-levelset"}) {
    core::SolveOptions o = core::registry::options_for(key).value();
    // Single worker, as in the budget study: the macro sites under test
    // run identically, without gang-scheduling jitter swamping the signal.
    o.cpu_threads = 1;
    const core::SolverPlan plan = core::SolverPlan::analyze(l, o).value();

    constexpr int kRounds = 15;
    constexpr int kSolvesPerSample = 8;
    auto sample_us = [&](bool armed) {
      support::trace::trace_set_enabled(armed);
      const auto t0 = std::chrono::steady_clock::now();
      for (int i = 0; i < kSolvesPerSample; ++i) {
        const auto r = plan.solve(b);
        if (!r.ok()) {
          std::fprintf(stderr, "trace-study solve failed: %s\n",
                       r.message().c_str());
          std::exit(3);
        }
      }
      return std::chrono::duration<double, std::micro>(
                 std::chrono::steady_clock::now() - t0)
          .count();
    };
    sample_us(false);  // warm the pool + caches off the record
    sample_us(true);

    const bench::PairedStudy study = bench::paired_median_study(
        [&] { return sample_us(false); }, [&] { return sample_us(true); },
        kRounds);
    support::trace::trace_set_enabled(false);
    support::trace::trace_clear();  // the rings the armed rounds filled
    TraceCase c;
    c.backend = key;
    c.disarmed_us = study.baseline_us / kSolvesPerSample;
    c.armed_us = study.candidate_us / kSolvesPerSample;
    c.noise_pct = study.noise_pct;
    c.overhead_pct = study.overhead_pct;
    if (compiled && c.overhead_pct > std::max(5.0, 3.0 + c.noise_pct)) {
      gate_ok = false;
    }
    cases.push_back(c);
  }

  // The CI-validated sample: one armed, trace-context'd solve, dumped as
  // the document an operator would pull with kTraceDump.
  if (compiled) {
    support::trace::trace_clear();
    support::trace::trace_set_enabled(true);
    {
      const support::trace::TraceId id = support::trace::make_trace_id();
      support::trace::ScopedTraceContext ctx(id);
      core::SolveOptions o = core::registry::options_for("cpu-syncfree").value();
      o.cpu_threads = 1;
      const core::SolverPlan plan = core::SolverPlan::analyze(l, o).value();
      const auto r = plan.solve(b);
      if (!r.ok()) {
        std::fprintf(stderr, "trace-sample solve failed: %s\n",
                     r.message().c_str());
        std::exit(3);
      }
    }
    support::trace::trace_set_enabled(false);
    const std::string doc = support::trace::trace_collect_json();
    support::trace::trace_clear();
    std::FILE* sf = std::fopen(sample_path.c_str(), "w");
    if (sf == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", sample_path.c_str());
      return 3;
    }
    std::fwrite(doc.data(), 1, doc.size(), sf);
    std::fclose(sf);
    std::printf("wrote %s (%zu bytes)\n", sample_path.c_str(), doc.size());
  }

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 3;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"armed-tracing overhead\",\n"
               "  \"matrix\": {\"rows\": %d, \"nnz\": %lld},\n"
               "  \"cpu_threads\": 1,\n  \"trace_compiled\": %s,\n"
               "  \"gate\": \"median overhead <= max(5%%, 3%% + measured "
               "noise)\",\n  \"cases\": [\n",
               l.rows, static_cast<long long>(l.nnz()),
               compiled ? "true" : "false");
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const TraceCase& c = cases[i];
    std::fprintf(f,
                 "    {\"backend\": \"%s\", \"disarmed_us\": %.2f, "
                 "\"armed_us\": %.2f, \"overhead_pct\": %.2f, "
                 "\"noise_pct\": %.2f}%s\n",
                 c.backend.c_str(), c.disarmed_us, c.armed_us, c.overhead_pct,
                 c.noise_pct, i + 1 < cases.size() ? "," : "");
    std::printf("BENCH_trace %-13s disarmed %8.2f us  armed %8.2f us  "
                "overhead %+.2f%% (noise %.2f%%)\n",
                c.backend.c_str(), c.disarmed_us, c.armed_us, c.overhead_pct,
                c.noise_pct);
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  if (!gate_ok) {
    std::fprintf(stderr,
                 "armed-tracing overhead gate FAILED: recording spans costs "
                 "more than max(5%%, 3%% + noise) over the disarmed path "
                 "(see above)\n");
    return 4;
  }
  return 0;
}

// ---- BENCH_taskgraph.json --------------------------------------------------
// Gate on the tentpole's payoff (ISSUE 10 acceptance): on a chain-heavy
// structure -- long width-1 chains feeding wide fans, the regime the
// coarsener exists for -- the cpu-taskgraph backend must beat the flat
// level schedule by >= 15% per rhs at 16 rhs, minus the machine's own
// measured same-code noise. Both backends run the identical fused
// interleaved batch kernel underneath; the entire difference is schedule
// overhead (one gang barrier per level vs one claim per coarsened task),
// so the result must ALSO be bit-identical, and that is asserted before a
// single sample is timed.
//
// The gate arms only on >= 4 hardware threads: below that the flat
// schedule pays almost no barrier tax and the comparison is reported as
// informational.

int write_taskgraph_json() {
  const char* path_env = std::getenv("MSPTRSV_BENCH_TASKGRAPH_JSON");
  const std::string path = path_env ? path_env : "BENCH_taskgraph.json";
  const unsigned hw = std::thread::hardware_concurrency();
  const bool gate_armed = hw >= 4;

  // 8 segments x 400-row chains x 256-wide fans: ~3200 narrow levels
  // whose per-level barrier cost dominates a flat schedule.
  const sparse::CscMatrix l = sparse::gen_chain_heavy(8, 400, 256, 4, 42);
  constexpr index_t kNumRhs = 16;
  std::vector<value_t> batch;
  for (index_t j = 0; j < kNumRhs; ++j) {
    const std::vector<value_t> bj = sparse::gen_rhs_for_solution(
        l, sparse::gen_solution(l.rows, 60 + static_cast<std::uint64_t>(j)));
    batch.insert(batch.end(), bj.begin(), bj.end());
  }

  auto plan_for = [&](const char* key) {
    core::SolveOptions o = core::registry::options_for(key).value();
    o.cpu_threads = 0;  // full gang; the barrier tax under test needs one
    o.rhs_layout = core::RhsLayout::kInterleaved;
    return core::SolverPlan::analyze(sparse::CscMatrix(l), o).value();
  };
  const core::SolverPlan flat = plan_for("cpu-levelset");
  const core::SolverPlan graph = plan_for("cpu-taskgraph");

  // Schedule choice must never change bits (the differential harness
  // holds this across the whole config grid; re-assert it on the exact
  // instance being timed).
  {
    const auto rf = flat.solve_batch(batch, kNumRhs);
    const auto rg = graph.solve_batch(batch, kNumRhs);
    if (!rf.ok() || !rg.ok() || rf.value().x != rg.value().x) {
      std::fprintf(stderr,
                   "taskgraph-study: schedules disagree bitwise -- refusing "
                   "to time a wrong answer\n");
      return 3;
    }
  }

  constexpr int kRounds = 15;
  constexpr int kSolvesPerSample = 4;
  auto sample_us = [&](const core::SolverPlan& plan) {
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < kSolvesPerSample; ++i) {
      const auto r = plan.solve_batch(batch, kNumRhs);
      if (!r.ok()) {
        std::fprintf(stderr, "taskgraph-study solve failed: %s\n",
                     r.message().c_str());
        std::exit(3);
      }
    }
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - t0)
        .count();
  };
  sample_us(flat);  // warm pools + caches off the record
  sample_us(graph);

  const bench::PairedStudy study = bench::paired_median_study(
      [&] { return sample_us(flat); }, [&] { return sample_us(graph); },
      kRounds);
  // ratio = taskgraph / flat-levels (median paired); speedup is its
  // inverse. Gate: speedup >= 1.15 minus the same-code noise floor.
  const double speedup = 1.0 / study.ratio;
  const double required = 1.15 - study.noise_pct / 100.0;
  const bool gate_ok = !gate_armed || speedup >= required;

  const sparse::TaskGraph* tg = graph.task_graph();
  const core::TunedDecision* tuned = graph.tuned();
  const index_t num_levels =
      flat.level_analysis() != nullptr ? flat.level_analysis()->num_levels : 0;

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 3;
  }
  const double flat_per_rhs = study.baseline_us / (kSolvesPerSample * kNumRhs);
  const double graph_per_rhs =
      study.candidate_us / (kSolvesPerSample * kNumRhs);
  std::fprintf(
      f,
      "{\n  \"bench\": \"task-graph schedule vs flat levels\",\n"
      "  \"matrix\": {\"rows\": %d, \"nnz\": %lld, \"levels\": %d},\n"
      "  \"num_rhs\": %d,\n  \"cpu_threads\": %u,\n"
      "  \"gate_armed\": %s,\n"
      "  \"gate\": \"speedup >= 1.15 - measured noise (>= 4 hw threads)\",\n"
      "  \"bitwise_equal\": true,\n"
      "  \"task_graph\": {\"num_tasks\": %d, \"levels_fused\": %d,\n"
      "    \"narrow_width\": %d, \"block_rows\": %d},\n"
      "  \"flat_per_rhs_us\": %.2f,\n  \"taskgraph_per_rhs_us\": %.2f,\n"
      "  \"speedup\": %.3f,\n  \"noise_pct\": %.2f\n}\n",
      l.rows, static_cast<long long>(l.nnz()), num_levels,
      static_cast<int>(kNumRhs), hw, gate_armed ? "true" : "false",
      tg != nullptr ? tg->num_tasks : -1,
      tg != nullptr ? tg->levels_fused : -1,
      tuned != nullptr ? tuned->coarsen.narrow_width : -1,
      tuned != nullptr ? tuned->coarsen.block_rows : -1, flat_per_rhs,
      graph_per_rhs, speedup, study.noise_pct);
  std::fclose(f);
  std::printf("BENCH_taskgraph %d levels -> %d tasks  flat %8.2f us/rhs  "
              "taskgraph %8.2f us/rhs  speedup %.3fx (noise %.2f%%)%s\n",
              num_levels, tg != nullptr ? tg->num_tasks : -1, flat_per_rhs,
              graph_per_rhs, speedup, study.noise_pct,
              gate_armed ? "" : "  [informational: < 4 hw threads]");
  std::printf("wrote %s\n", path.c_str());
  if (!gate_ok) {
    std::fprintf(stderr,
                 "taskgraph speedup gate FAILED: coarsened schedule is not "
                 ">= 1.15x - noise over flat levels on the chain-heavy "
                 "instance (see above)\n");
    return 4;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  const int rc_batch = write_batch_json();
  if (rc_batch != 0) return rc_batch;
  const int rc_budget = write_budget_json();
  if (rc_budget != 0) return rc_budget;
  const int rc_trace = write_trace_json();
  if (rc_trace != 0) return rc_trace;
  const int rc_kernel = write_kernel_json();
  if (rc_kernel != 0) return rc_kernel;
  const int rc_taskgraph = write_taskgraph_json();
  if (rc_taskgraph != 0) return rc_taskgraph;
  return write_plan_io_json();
}
