// Micro-benchmarks (google-benchmark) of the real host backends and the
// hot substrate paths: these measure actual wall-clock on this machine,
// complementing the simulated figure benches.
#include <benchmark/benchmark.h>

#include "core/msptrsv.hpp"

using namespace msptrsv;

namespace {

const sparse::CscMatrix& bench_matrix() {
  static const sparse::CscMatrix m =
      sparse::gen_layered_dag(20000, 50, 120000, 0.5, 99);
  return m;
}

const std::vector<value_t>& bench_rhs() {
  static const std::vector<value_t> b = sparse::gen_rhs_for_solution(
      bench_matrix(), sparse::gen_solution(bench_matrix().rows, 5));
  return b;
}

void BM_SerialSolve(benchmark::State& state) {
  const auto& l = bench_matrix();
  const auto& b = bench_rhs();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::solve_lower_serial(l, b));
  }
  state.SetItemsProcessed(state.iterations() * l.nnz());
}
BENCHMARK(BM_SerialSolve);

void BM_CpuLevelSetSolve(benchmark::State& state) {
  const auto& l = bench_matrix();
  const auto& b = bench_rhs();
  const sparse::LevelAnalysis a = sparse::analyze_levels(l);
  const int threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::solve_lower_levelset_threads(l, b, a, threads));
  }
  state.SetItemsProcessed(state.iterations() * l.nnz());
}
BENCHMARK(BM_CpuLevelSetSolve)->Arg(1)->Arg(2)->Arg(4);

void BM_CpuSyncFreeSolve(benchmark::State& state) {
  const auto& l = bench_matrix();
  const auto& b = bench_rhs();
  const int threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::solve_lower_syncfree_threads(l, b, threads));
  }
  state.SetItemsProcessed(state.iterations() * l.nnz());
}
BENCHMARK(BM_CpuSyncFreeSolve)->Arg(1)->Arg(2)->Arg(4);

void BM_LevelAnalysis(benchmark::State& state) {
  const auto& l = bench_matrix();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sparse::analyze_levels(l));
  }
  state.SetItemsProcessed(state.iterations() * l.nnz());
}
BENCHMARK(BM_LevelAnalysis);

void BM_InDegreeCount(benchmark::State& state) {
  const auto& l = bench_matrix();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sparse::compute_in_degrees(l));
  }
  state.SetItemsProcessed(state.iterations() * l.nnz());
}
BENCHMARK(BM_InDegreeCount);

void BM_LayeredDagGenerator(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sparse::gen_layered_dag(10000, 40, 60000, 0.5, 7));
  }
}
BENCHMARK(BM_LayeredDagGenerator);

void BM_SimulatedZerocopy4Gpu(benchmark::State& state) {
  const auto& l = bench_matrix();
  const auto& b = bench_rhs();
  const core::SolveOptions o =
      core::registry::options_for("mg-zerocopy").value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::solve(l, b, o));
  }
  state.SetItemsProcessed(state.iterations() * l.nnz());
}
BENCHMARK(BM_SimulatedZerocopy4Gpu);

// ---- one-shot vs plan: the amortization the phase-split API exists for.
// The one-shot path re-runs validation + analysis every call; the plan
// path pays them once in analyze() and each iteration below is a pure
// solve. Per-iteration time must drop for the plan variants.

void BM_OneShotSolve_CpuSyncFree(benchmark::State& state) {
  const auto& l = bench_matrix();
  const auto& b = bench_rhs();
  core::SolveOptions o = core::registry::options_for("cpu-syncfree").value();
  o.cpu_threads = 2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::solve(l, b, o));
  }
  state.SetItemsProcessed(state.iterations() * l.nnz());
}
BENCHMARK(BM_OneShotSolve_CpuSyncFree);

void BM_PlanSolve_CpuSyncFree(benchmark::State& state) {
  const auto& l = bench_matrix();
  const auto& b = bench_rhs();
  core::SolveOptions o = core::registry::options_for("cpu-syncfree").value();
  o.cpu_threads = 2;
  const core::SolverPlan plan = core::SolverPlan::analyze(l, o).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(plan.solve(b));
  }
  state.SetItemsProcessed(state.iterations() * l.nnz());
}
BENCHMARK(BM_PlanSolve_CpuSyncFree);

void BM_OneShotSolve_Serial(benchmark::State& state) {
  const auto& l = bench_matrix();
  const auto& b = bench_rhs();
  const core::SolveOptions o = core::registry::options_for("serial").value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::solve(l, b, o));
  }
  state.SetItemsProcessed(state.iterations() * l.nnz());
}
BENCHMARK(BM_OneShotSolve_Serial);

void BM_PlanSolve_Serial(benchmark::State& state) {
  const auto& l = bench_matrix();
  const auto& b = bench_rhs();
  const core::SolverPlan plan =
      core::SolverPlan::analyze(l, core::registry::options_for("serial").value())
          .value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(plan.solve(b));
  }
  state.SetItemsProcessed(state.iterations() * l.nnz());
}
BENCHMARK(BM_PlanSolve_Serial);

void BM_PlanSolve_Zerocopy(benchmark::State& state) {
  const auto& l = bench_matrix();
  const auto& b = bench_rhs();
  const core::SolverPlan plan =
      core::SolverPlan::analyze(
          l, core::registry::options_for("mg-zerocopy").value())
          .value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(plan.solve(b));
  }
  state.SetItemsProcessed(state.iterations() * l.nnz());
}
BENCHMARK(BM_PlanSolve_Zerocopy);

void BM_PlanSolveBatch8_Serial(benchmark::State& state) {
  const auto& l = bench_matrix();
  const index_t num_rhs = 8;
  std::vector<value_t> batch;
  for (index_t j = 0; j < num_rhs; ++j) {
    const std::vector<value_t> b = sparse::gen_rhs_for_solution(
        l, sparse::gen_solution(l.rows, 100 + static_cast<std::uint64_t>(j)));
    batch.insert(batch.end(), b.begin(), b.end());
  }
  const core::SolverPlan plan =
      core::SolverPlan::analyze(l, core::registry::options_for("serial").value())
          .value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(plan.solve_batch(batch, num_rhs));
  }
  state.SetItemsProcessed(state.iterations() * l.nnz() * num_rhs);
}
BENCHMARK(BM_PlanSolveBatch8_Serial);

void BM_CscTranspose(benchmark::State& state) {
  const auto& l = bench_matrix();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sparse::transpose(l));
  }
}
BENCHMARK(BM_CscTranspose);

}  // namespace

BENCHMARK_MAIN();
