// Shared plumbing of the figure-regeneration benches: suite loading at a
// configurable scale, solver invocation, and normalized-series printing.
//
// Every bench accepts:
//   --max-rows N     cap on generated matrix size (default 40000; the
//                    paper-scale structure metrics are preserved, see
//                    sparse/suite.hpp)
//   --matrices a,b   subset of Table I names (default: all 16)
//   --csv            additionally emit CSV after the human-readable table
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/msptrsv.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

namespace msptrsv::bench {

struct BenchContext {
  index_t max_rows = 40000;
  std::vector<std::string> matrix_names;  // empty = whole suite
  bool csv = false;
};

/// Registers the common flags on a parser.
void add_common_options(support::CliParser& cli);

/// Reads them back after parse().
BenchContext context_from(const support::CliParser& cli);

/// Generates the configured slice of the Table I suite (cached rhs too).
struct BenchMatrix {
  sparse::SuiteMatrix suite;
  std::vector<value_t> b;
};
std::vector<BenchMatrix> load_matrices(const BenchContext& ctx);

/// Resolves a registry key into that backend's default SolveOptions. The
/// benches pick their design points by key -- no binary carries its own
/// backend switch statement. Unknown keys print the catalogue to stderr
/// and exit(2).
core::SolveOptions options_for_backend(const std::string& key);

/// Registers a --backend flag (help text lists the registry catalogue).
void add_backend_option(support::CliParser& cli,
                        const std::string& default_key);
/// Reads --backend back into that backend's default SolveOptions.
core::SolveOptions backend_options_from(const support::CliParser& cli);

/// Runs one simulated configuration and returns analysis+solve time in us
/// (the paper sums both phases). Also validates the solution against the
/// serial reference and aborts loudly on mismatch -- a bench that prints
/// numbers for wrong answers is worse than no bench.
/// (For plan-vs-one-shot amortization numbers see bench_micro's
/// BM_OneShotSolve_* / BM_PlanSolve_* pairs.)
double timed_solve_us(const BenchMatrix& m, const core::SolveOptions& options);

/// Renders the table (and optional CSV) to stdout with a caption.
void print_table(const std::string& caption, const support::Table& table,
                 bool csv);

/// Geometric-mean label row helper: "Avg." in the paper's figures.
double average_speedup(const std::vector<double>& speedups);

/// Noise-guarded paired comparison of two timed code paths -- the
/// statistic every wall-clock CI gate in this repo uses.
///
/// Each round brackets the candidate between two baseline samples
/// (A, candidate, B); the round's ratio is candidate / mean(A, B), so
/// load drift within the round cancels. The reported ratio is the MEDIAN
/// across rounds (immune to any single scheduler hiccup), and the noise
/// floor is measured on IDENTICAL code the same way: median of
/// |A - B| / min(A, B). Gate against `max(floor_pct, margin_pct +
/// noise_pct)` so an unlucky box cannot flake the build while a real
/// regression (tens of percent) cannot hide behind either term.
struct PairedStudy {
  double baseline_us = 0.0;   ///< median bracketed baseline sample
  double candidate_us = 0.0;  ///< median candidate sample
  double ratio = 1.0;         ///< median paired candidate/baseline ratio
  double noise_pct = 0.0;     ///< median |A - B| / min(A, B), in percent
  /// 100 * (median ratio - 1): how much SLOWER the candidate is than the
  /// baseline (negative = candidate is faster).
  double overhead_pct = 0.0;
};

/// Runs `rounds` bracketed rounds of the two samplers (each sampler
/// returns the microseconds one sample took; batch several operations
/// per sample if a single one is too short to time). Callers should warm
/// both paths once before the study.
PairedStudy paired_median_study(const std::function<double()>& baseline,
                                const std::function<double()>& candidate,
                                int rounds = 15);

}  // namespace msptrsv::bench
