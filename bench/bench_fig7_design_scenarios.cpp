// Figure 7: speedup of the four design scenarios over 4GPU-Unified on a
// 4-GPU DGX-1 --
//   (i)  4GPU-Unified       Algorithm 2, block distribution
//   (ii) 4GPU-Unified+8task Algorithm 2 + task pool (8 tasks/GPU)
//   (iii)4GPU-Shmem         Algorithm 3, block distribution
//   (iv) 4GPU-Zerocopy      Algorithm 3 + task pool (8 tasks/GPU)
// The paper reports Unified+task ~0.89x, Shmem ~2.33x (up to 8.1x),
// Zerocopy ~3.53x (up to 9.86x), with the largest zero-copy wins on
// high-parallelism matrices (dc2, nlpkkt160, powersim, Wordnet3).
#include <cstdio>

#include "bench_common.hpp"

using namespace msptrsv;

int main(int argc, char** argv) {
  support::CliParser cli(
      "Figure 7: SpTRSV design scenarios on a 4-GPU DGX-1, normalized to "
      "4GPU-Unified (higher is better).");
  bench::add_common_options(cli);
  cli.add_option("tasks-per-gpu", "8", "task-pool granularity");
  if (!cli.parse(argc, argv)) return 0;
  const bench::BenchContext ctx = bench::context_from(cli);
  const int tasks = static_cast<int>(cli.get_int("tasks-per-gpu"));

  const sim::Machine dgx1 = sim::Machine::dgx1(4);
  auto options_for = [&](const std::string& key) {
    core::SolveOptions o = bench::options_for_backend(key);
    o.machine = dgx1;
    o.tasks_per_gpu = tasks;
    return o;
  };

  support::Table table({"Matrix", "Unified (us)", "Unified+task x", "Shmem x",
                        "Zerocopy x"});
  std::vector<double> sp_task, sp_shmem, sp_zero;

  for (const bench::BenchMatrix& m : bench::load_matrices(ctx)) {
    const double unified =
        bench::timed_solve_us(m, options_for("mg-unified"));
    const double unified_task =
        bench::timed_solve_us(m, options_for("mg-unified-task"));
    const double shmem =
        bench::timed_solve_us(m, options_for("mg-shmem"));
    const double zerocopy =
        bench::timed_solve_us(m, options_for("mg-zerocopy"));

    sp_task.push_back(unified / unified_task);
    sp_shmem.push_back(unified / shmem);
    sp_zero.push_back(unified / zerocopy);

    table.begin_row();
    table.add_cell(m.suite.entry.name);
    table.add_cell(unified, 1);
    table.add_cell(sp_task.back(), 2);
    table.add_cell(sp_shmem.back(), 2);
    table.add_cell(sp_zero.back(), 2);
  }

  table.add_separator();
  table.begin_row();
  table.add_cell("Avg. (geomean)");
  table.add_cell("");
  table.add_cell(bench::average_speedup(sp_task), 2);
  table.add_cell(bench::average_speedup(sp_shmem), 2);
  table.add_cell(bench::average_speedup(sp_zero), 2);

  bench::print_table(
      "Figure 7 -- speedup over 4GPU-Unified (DGX-1, 4 GPUs, " +
          std::to_string(tasks) + " tasks/GPU):",
      table, ctx.csv);
  std::printf("Paper reference: Unified+task ~0.89x avg, Shmem ~2.33x avg "
              "(up to 8.1x), Zerocopy ~3.53x avg (up to 9.86x).\n");
  return 0;
}
