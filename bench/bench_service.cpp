// Throughput benchmark of the multi-tenant solve service.
//
// Two load shapes, each swept over a client count:
//
//  * CLOSED loop -- every client submits one request and WAITS for the
//    reply before the next (the latency-bound shape). The 1-client closed
//    loop is the baseline the acceptance criterion compares against:
//    multi-client throughput must beat it, because concurrent clients'
//    same-plan requests coalesce into fused solve_batch calls while a
//    lone client's never can.
//
//  * OPEN loop -- clients fire submits without waiting (reaping futures in
//    the background) until backpressure pushes back; kOverloaded replies
//    are counted, not retried. This is the saturation shape: it shows the
//    admission bound holding and the coalesce width growing to the cap.
//
// Two scheduler studies ride along (the SLO-era additions):
//
//  * PRIORITY SWEEP -- a high-priority closed-loop stream is measured
//    twice: isolated, then mixed with a background flood on another
//    tenant. Weighted deadline-aware ripening must keep the high class's
//    p99 within 2x of its isolated p99 (the acceptance bound; checked
//    with a small absolute noise floor).
//
//  * MANY TINY TENANTS -- one closed-loop client per tiny factor, run
//    with cross-plan packing disabled and then enabled. Packing several
//    narrow solves into one gang-claimed dispatch must not lose (and
//    should gain) closed-loop throughput.
//
// Emits BENCH_service.json (override the path with
// MSPTRSV_BENCH_SERVICE_JSON) with per-point throughput, coalesce width,
// p50/p99 latency, and both study blocks -- the service-era companion of
// BENCH_batch.json. Exits non-zero on any solve failure or if the
// service's answers diverge from a direct plan.solve (a bench that prints
// numbers for wrong answers is worse than no bench).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "core/msptrsv.hpp"
#include "support/cli.hpp"

namespace {

using namespace msptrsv;
using Clock = std::chrono::steady_clock;

struct CasePoint {
  std::string mode;
  int clients = 1;
  double seconds = 0.0;
  std::uint64_t completed = 0;
  std::uint64_t rejected = 0;
  double throughput = 0.0;  // completed rhs / s
  double mean_width = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
};

struct Workload {
  sparse::CscMatrix lower;
  std::vector<value_t> b;
  std::vector<value_t> expected;
};

service::ServiceOptions service_options(index_t max_coalesce) {
  service::ServiceOptions opt;
  opt.max_coalesce = max_coalesce;
  // Natural batching only: no artificial wait, so the 1-client closed
  // loop is not penalized by a window it can never fill.
  opt.coalesce_window = std::chrono::microseconds(0);
  opt.max_pending_rhs = 4096;
  return opt;
}

CasePoint run_closed_loop(const Workload& w, const std::string& backend,
                          int clients, double seconds, index_t max_coalesce,
                          int& failures) {
  service::SolveService svc(service_options(max_coalesce));
  const auto plan = svc.plan_for(w.lower, backend);
  if (!plan.ok()) {
    std::fprintf(stderr, "plan_for(%s) failed: %s\n", backend.c_str(),
                 plan.message().c_str());
    ++failures;
    return {};
  }
  std::atomic<int> bad{0};
  const Clock::time_point t0 = Clock::now();
  const Clock::time_point deadline =
      t0 + std::chrono::duration_cast<Clock::duration>(
               std::chrono::duration<double>(seconds));
  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&] {
      while (Clock::now() < deadline) {
        service::SolveService::Reply r = svc.submit(*plan, w.b).get();
        if (!r.ok() || r.value().x != w.expected) bad.fetch_add(1);
      }
    });
  }
  for (std::thread& th : threads) th.join();
  svc.drain();
  const double elapsed =
      std::chrono::duration<double>(Clock::now() - t0).count();
  const service::ServiceStatsSnapshot s = svc.stats();
  failures += bad.load();

  CasePoint p;
  p.mode = "closed";
  p.clients = clients;
  p.seconds = elapsed;
  p.completed = s.completed;
  p.rejected = s.rejected;
  p.throughput = static_cast<double>(s.completed) / elapsed;
  p.mean_width = s.mean_coalesce_width;
  p.p50_us = s.p50_latency_us;
  p.p99_us = s.p99_latency_us;
  return p;
}

CasePoint run_open_loop(const Workload& w, const std::string& backend,
                        int clients, double seconds, index_t max_coalesce,
                        int& failures) {
  service::SolveService svc(service_options(max_coalesce));
  const auto plan = svc.plan_for(w.lower, backend);
  if (!plan.ok()) {
    ++failures;
    return {};
  }
  std::atomic<int> bad{0};
  const Clock::time_point t0 = Clock::now();
  const Clock::time_point deadline =
      t0 + std::chrono::duration_cast<Clock::duration>(
               std::chrono::duration<double>(seconds));
  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&] {
      std::vector<std::future<service::SolveService::Reply>> inflight;
      const auto check = [&](service::SolveService::Reply r) {
        // Backpressure is expected in an open loop; any OTHER failure --
        // or wrong bits -- must fail the bench.
        if (!r.ok()) {
          if (r.status() != core::SolveStatus::kOverloaded) bad.fetch_add(1);
        } else if (r.value().x != w.expected) {
          bad.fetch_add(1);
        }
      };
      const auto reap = [&](bool all) {
        for (auto& f : inflight) {
          if (!all &&
              f.wait_for(std::chrono::seconds(0)) != std::future_status::ready)
            continue;
          check(f.get());
          f = {};
        }
        std::erase_if(inflight, [](const auto& f) { return !f.valid(); });
      };
      while (Clock::now() < deadline) {
        auto fut = svc.submit(*plan, w.b);
        // An immediately-ready future is (almost always) backpressure:
        // yield instead of spinning the queue lock.
        if (fut.wait_for(std::chrono::seconds(0)) ==
            std::future_status::ready) {
          service::SolveService::Reply r = fut.get();
          const bool backpressured =
              !r.ok() && r.status() == core::SolveStatus::kOverloaded;
          check(std::move(r));
          if (backpressured) std::this_thread::yield();
        } else {
          inflight.push_back(std::move(fut));
        }
        if (inflight.size() >= 64) reap(false);
      }
      reap(true);
    });
  }
  for (std::thread& th : threads) th.join();
  svc.drain();
  const double elapsed =
      std::chrono::duration<double>(Clock::now() - t0).count();
  const service::ServiceStatsSnapshot s = svc.stats();
  failures += bad.load();

  CasePoint p;
  p.mode = "open";
  p.clients = clients;
  p.seconds = elapsed;
  p.completed = s.completed;
  p.rejected = s.rejected;
  p.throughput = static_cast<double>(s.completed) / elapsed;
  p.mean_width = s.mean_coalesce_width;
  p.p50_us = s.p50_latency_us;
  p.p99_us = s.p99_latency_us;
  return p;
}

struct PriorityStudy {
  double isolated_p99_us = 0.0;
  double mixed_p99_us = 0.0;
  double ratio = 0.0;
  std::uint64_t high_completed = 0;
  std::uint64_t background_completed = 0;
};

/// High-priority p99 of `high_clients` closed-loop clients over
/// `seconds`, optionally with `bg_clients` background closed-loop clients
/// flooding a second tenant.
double run_priority_point(const Workload& hi, const Workload& bg,
                          const std::string& backend, int high_clients,
                          int bg_clients, double seconds, int& failures,
                          std::uint64_t* hi_done, std::uint64_t* bg_done) {
  service::ServiceOptions opt;
  opt.max_pending_rhs = 4096;
  opt.max_coalesce = 32;
  // A real window so the background class actually coalesces (and so its
  // scaled wait is visible); the high class never waits it out.
  opt.coalesce_window = std::chrono::microseconds(200);
  service::SolveService svc(opt);
  const auto plan_hi = svc.plan_for(hi.lower, backend);
  const auto plan_bg = svc.plan_for(bg.lower, backend);
  if (!plan_hi.ok() || !plan_bg.ok()) {
    ++failures;
    return 0.0;
  }
  std::atomic<int> bad{0};
  const Clock::time_point deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(seconds));
  std::vector<std::thread> threads;
  for (int c = 0; c < high_clients; ++c) {
    threads.emplace_back([&] {
      while (Clock::now() < deadline) {
        service::SolveService::Reply r =
            svc.submit(*plan_hi, hi.b,
                       {.priority = service::Priority::kHigh})
                .get();
        if (!r.ok() || r.value().x != hi.expected) bad.fetch_add(1);
      }
    });
  }
  for (int c = 0; c < bg_clients; ++c) {
    threads.emplace_back([&] {
      while (Clock::now() < deadline) {
        service::SolveService::Reply r =
            svc.submit(*plan_bg, bg.b,
                       {.priority = service::Priority::kBackground})
                .get();
        if (!r.ok() || r.value().x != bg.expected) bad.fetch_add(1);
      }
    });
  }
  for (std::thread& th : threads) th.join();
  svc.drain();
  failures += bad.load();
  const service::ServiceStatsSnapshot s = svc.stats();
  const auto& hi_cls =
      s.per_class[static_cast<std::size_t>(service::Priority::kHigh)];
  const auto& bg_cls =
      s.per_class[static_cast<std::size_t>(service::Priority::kBackground)];
  if (hi_done != nullptr) *hi_done = hi_cls.completed;
  if (bg_done != nullptr) *bg_done = bg_cls.completed;
  return hi_cls.p99_latency_us;
}

struct PackingStudy {
  int tenants = 0;
  double off_rhs_per_s = 0.0;
  double on_rhs_per_s = 0.0;
  double speedup = 0.0;
  std::uint64_t packed_dispatches = 0;
  double mean_packed_plans = 0.0;
};

/// Closed-loop throughput of one client per tiny tenant, with cross-plan
/// packing disabled (pack_max_groups = 1) or enabled.
double run_tiny_tenants(const std::vector<Workload>& tenants,
                        const std::string& backend, bool packing,
                        double seconds, int& failures,
                        service::ServiceStatsSnapshot* out_stats) {
  service::ServiceOptions opt;
  opt.max_pending_rhs = 4096;
  // Natural batching only (window 0): while the dispatcher hands one
  // tenant off, the others ripen, so the next pop finds several ripe
  // groups -- exactly what packing turns into one dispatch. Identical for
  // both arms so only packing differs.
  opt.coalesce_window = std::chrono::microseconds(0);
  opt.pack_max_groups = packing ? 8 : 1;
  opt.pack_narrow_width = 4;
  opt.pack_small_rows =
      static_cast<index_t>(tenants.front().lower.rows + 1);
  service::SolveService svc(opt);
  std::vector<core::SolverPlan> plans;
  for (const Workload& w : tenants) {
    const auto plan = svc.plan_for(w.lower, backend);
    if (!plan.ok()) {
      ++failures;
      return 0.0;
    }
    plans.push_back(*plan);
  }
  std::atomic<int> bad{0};
  const Clock::time_point t0 = Clock::now();
  const Clock::time_point deadline =
      t0 + std::chrono::duration_cast<Clock::duration>(
               std::chrono::duration<double>(seconds));
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < tenants.size(); ++t) {
    threads.emplace_back([&, t] {
      while (Clock::now() < deadline) {
        service::SolveService::Reply r =
            svc.submit(plans[t], tenants[t].b).get();
        if (!r.ok() || r.value().x != tenants[t].expected) bad.fetch_add(1);
      }
    });
  }
  for (std::thread& th : threads) th.join();
  svc.drain();
  const double elapsed =
      std::chrono::duration<double>(Clock::now() - t0).count();
  failures += bad.load();
  const service::ServiceStatsSnapshot s = svc.stats();
  if (out_stats != nullptr) *out_stats = s;
  return static_cast<double>(s.completed) / elapsed;
}

}  // namespace

int main(int argc, char** argv) {
  support::CliParser cli(
      "Solve-service throughput: open vs closed loop over a client sweep "
      "(emits BENCH_service.json)");
  cli.add_option("backend", "cpu-syncfree",
                 "registry backend key served by the benchmark");
  cli.add_option("rows", "20000", "generated factor dimension");
  cli.add_option("seconds", "0.4", "measured seconds per point");
  cli.add_option("clients", "1,2,4,8,16,32,64",
                 "comma-separated client counts");
  cli.add_option("max-coalesce", "32", "widest fused dispatch");
  cli.add_option("tiny-tenants", "12",
                 "tenant count of the cross-plan packing study");
  cli.add_option("tiny-rows", "600",
                 "factor dimension of each tiny tenant");
  if (!cli.parse(argc, argv)) return 0;

  const std::string backend = cli.get_string("backend");
  const index_t rows = static_cast<index_t>(cli.get_int("rows"));
  const double seconds = cli.get_double("seconds");
  const index_t max_coalesce =
      static_cast<index_t>(cli.get_int("max-coalesce"));
  std::vector<int> client_counts;
  for (const std::string& c : cli.get_list("clients")) {
    client_counts.push_back(std::atoi(c.c_str()));
  }

  Workload w;
  w.lower = sparse::gen_layered_dag(rows, 40, rows * 6, 0.5, 99);
  w.b = sparse::gen_rhs_for_solution(w.lower,
                                     sparse::gen_solution(w.lower.rows, 1));
  // Ground truth from a direct (non-service) plan: every service reply in
  // every configuration below must reproduce these bits.
  {
    const auto direct =
        core::registry::analyze_cached(w.lower, backend);
    if (!direct.ok()) {
      std::fprintf(stderr, "baseline analyze failed: %s\n",
                   direct.message().c_str());
      return 2;
    }
    w.expected = direct->solve(w.b).value().x;
  }

  int failures = 0;
  std::vector<CasePoint> points;
  for (const std::string& mode : {std::string("closed"), std::string("open")}) {
    for (int clients : client_counts) {
      const CasePoint p =
          mode == "closed"
              ? run_closed_loop(w, backend, clients, seconds, max_coalesce,
                                failures)
              : run_open_loop(w, backend, clients, seconds, max_coalesce,
                              failures);
      std::printf(
          "BENCH_service %-6s clients=%-3d  %8.0f rhs/s  width %5.2f  "
          "p50 %8.1f us  p99 %8.1f us  rejected %llu\n",
          p.mode.c_str(), p.clients, p.throughput, p.mean_width, p.p50_us,
          p.p99_us, static_cast<unsigned long long>(p.rejected));
      points.push_back(p);
    }
  }
  if (failures != 0) {
    std::fprintf(stderr,
                 "%d solve failures/mismatches -- refusing to emit numbers "
                 "for wrong answers\n",
                 failures);
    return 3;
  }

  // The acceptance sanity check: some multi-client CLOSED-loop point must
  // beat the single-client closed-loop baseline (coalescing has to buy
  // real throughput under the latency-bound shape, not just look busy --
  // open-loop points would trivially pass and are excluded).
  double single = 0.0, best_multi = 0.0;
  for (const CasePoint& p : points) {
    if (p.mode != "closed") continue;
    if (p.clients == 1) single = p.throughput;
    if (p.clients > 1) best_multi = std::max(best_multi, p.throughput);
  }
  // Tolerance: on a 1-2 core box coalescing has no parallelism to
  // exploit and multi-vs-single is pure scheduler noise around 1.0x; a
  // real regression (multi-client losing by more than the noise band)
  // still fails.
  if (single > 0.0 && best_multi > 0.0 && best_multi < 0.92 * single) {
    std::fprintf(stderr,
                 "multi-client closed-loop throughput (%.0f rhs/s) does not "
                 "beat the single-client baseline (%.0f rhs/s)\n",
                 best_multi, single);
    return 4;
  }

  // ---- priority sweep: isolated vs mixed high-priority p99 ----------------
  PriorityStudy prio;
  {
    Workload bg_load;
    bg_load.lower = sparse::gen_layered_dag(rows, 40, rows * 6, 0.5, 123);
    bg_load.b = sparse::gen_rhs_for_solution(
        bg_load.lower, sparse::gen_solution(bg_load.lower.rows, 2));
    const auto direct = core::registry::analyze_cached(bg_load.lower, backend);
    if (!direct.ok()) return 2;
    bg_load.expected = direct->solve(bg_load.b).value().x;

    // Best-of-3 per point: a p99 over a few hundred samples is one OS
    // scheduling hiccup away from doubling (CI runners share cores), and
    // the min over trials is the stable estimator of what the scheduler
    // actually delivers.
    constexpr int kTrials = 3;
    prio.isolated_p99_us = 1e300;
    prio.mixed_p99_us = 1e300;
    for (int trial = 0; trial < kTrials; ++trial) {
      std::uint64_t hi_done = 0, bg_done = 0;
      prio.isolated_p99_us = std::min(
          prio.isolated_p99_us,
          run_priority_point(w, bg_load, backend, /*high_clients=*/2,
                             /*bg_clients=*/0, seconds, failures, nullptr,
                             nullptr));
      // Both completion counts come from the MIXED runs: they describe
      // the same experiment as the ratio (high throughput under flood).
      prio.mixed_p99_us = std::min(
          prio.mixed_p99_us,
          run_priority_point(w, bg_load, backend, /*high_clients=*/2,
                             /*bg_clients=*/6, seconds, failures, &hi_done,
                             &bg_done));
      prio.high_completed += hi_done;
      prio.background_completed += bg_done;
    }
    // A small absolute floor keeps sub-100us isolated runs from turning
    // scheduler jitter into a spurious ratio failure.
    const double floor_us = std::max(prio.isolated_p99_us, 300.0);
    prio.ratio = prio.mixed_p99_us / floor_us;
    std::printf(
        "BENCH_service priority  isolated p99 %8.1f us   mixed p99 %8.1f us"
        "   ratio %.2fx   (%llu high, %llu background rhs)\n",
        prio.isolated_p99_us, prio.mixed_p99_us, prio.ratio,
        static_cast<unsigned long long>(prio.high_completed),
        static_cast<unsigned long long>(prio.background_completed));
    if (failures == 0 && prio.ratio > 2.0) {
      std::fprintf(stderr,
                   "high-priority p99 under mixed load (%.1f us) exceeds 2x "
                   "its isolated p99 (%.1f us, floor 300 us): the weighted "
                   "scheduler is not protecting the latency class\n",
                   prio.mixed_p99_us, prio.isolated_p99_us);
      return 5;
    }
  }

  // ---- many tiny tenants: cross-plan packing off vs on --------------------
  PackingStudy pack;
  {
    const int n_tiny = std::max(2, static_cast<int>(cli.get_int("tiny-tenants")));
    const index_t tiny_rows =
        std::max<index_t>(64, static_cast<index_t>(cli.get_int("tiny-rows")));
    std::vector<Workload> tenants;
    for (int t = 0; t < n_tiny; ++t) {
      Workload tw;
      tw.lower = sparse::gen_layered_dag(
          tiny_rows, 12, tiny_rows * 5, 0.5,
          static_cast<std::uint64_t>(400 + t));
      tw.b = sparse::gen_rhs_for_solution(
          tw.lower, sparse::gen_solution(tw.lower.rows, 3));
      const auto direct = core::registry::analyze_cached(tw.lower, backend);
      if (!direct.ok()) return 2;
      tw.expected = direct->solve(tw.b).value().x;
      tenants.push_back(std::move(tw));
    }
    pack.tenants = n_tiny;
    // Best-of-3 per arm, same reasoning as the priority study.
    constexpr int kTrials = 3;
    std::uint64_t packed_dispatches_total = 0;
    std::uint64_t packed_plans_total = 0;
    for (int trial = 0; trial < kTrials; ++trial) {
      service::ServiceStatsSnapshot on_stats;
      pack.off_rhs_per_s = std::max(
          pack.off_rhs_per_s,
          run_tiny_tenants(tenants, backend, /*packing=*/false, seconds,
                           failures, nullptr));
      pack.on_rhs_per_s = std::max(
          pack.on_rhs_per_s,
          run_tiny_tenants(tenants, backend, /*packing=*/true, seconds,
                           failures, &on_stats));
      packed_dispatches_total += on_stats.packed_dispatches;
      packed_plans_total += on_stats.packed_plans;
    }
    pack.speedup =
        pack.off_rhs_per_s > 0.0 ? pack.on_rhs_per_s / pack.off_rhs_per_s : 0.0;
    pack.packed_dispatches = packed_dispatches_total;
    pack.mean_packed_plans =
        packed_dispatches_total == 0
            ? 0.0
            : static_cast<double>(packed_plans_total) /
                  static_cast<double>(packed_dispatches_total);
    std::printf(
        "BENCH_service packing   %2d tiny tenants: %8.0f rhs/s unpacked  "
        "%8.0f rhs/s packed  (%.2fx, %llu packed dispatches, mean %.2f "
        "plans each)\n",
        pack.tenants, pack.off_rhs_per_s, pack.on_rhs_per_s, pack.speedup,
        static_cast<unsigned long long>(pack.packed_dispatches),
        pack.mean_packed_plans);
    if (failures == 0 && pack.packed_dispatches == 0) {
      std::fprintf(stderr,
                   "cross-plan packing never engaged for %d tiny tenants\n",
                   pack.tenants);
      return 6;
    }
    // Packing must not LOSE throughput (small tolerance for run-to-run
    // noise; typical wins are well above it).
    if (failures == 0 && pack.speedup < 0.95) {
      std::fprintf(stderr,
                   "cross-plan packing regressed many-tiny-tenant "
                   "closed-loop throughput: %.0f -> %.0f rhs/s (%.2fx)\n",
                   pack.off_rhs_per_s, pack.on_rhs_per_s, pack.speedup);
      return 6;
    }
  }
  if (failures != 0) {
    std::fprintf(stderr,
                 "%d solve failures/mismatches in the scheduler studies\n",
                 failures);
    return 3;
  }

  const char* path_env = std::getenv("MSPTRSV_BENCH_SERVICE_JSON");
  const std::string path = path_env ? path_env : "BENCH_service.json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 3;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"solve service open/closed loop\",\n"
               "  \"backend\": \"%s\",\n"
               "  \"matrix\": {\"rows\": %d, \"nnz\": %lld},\n"
               "  \"max_coalesce\": %d,\n  \"cases\": [\n",
               backend.c_str(), w.lower.rows,
               static_cast<long long>(w.lower.nnz()), max_coalesce);
  for (std::size_t i = 0; i < points.size(); ++i) {
    const CasePoint& p = points[i];
    std::fprintf(
        f,
        "    {\"mode\": \"%s\", \"clients\": %d, \"seconds\": %.3f, "
        "\"completed_rhs\": %llu, \"rejected_rhs\": %llu, "
        "\"throughput_rhs_per_s\": %.1f, \"mean_coalesce_width\": %.3f, "
        "\"p50_latency_us\": %.1f, \"p99_latency_us\": %.1f}%s\n",
        p.mode.c_str(), p.clients, p.seconds,
        static_cast<unsigned long long>(p.completed),
        static_cast<unsigned long long>(p.rejected), p.throughput,
        p.mean_width, p.p50_us, p.p99_us,
        i + 1 < points.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(
      f,
      "  \"priority_study\": {\"high_clients\": 2, \"background_clients\": 6, "
      "\"isolated_p99_us\": %.1f, \"mixed_p99_us\": %.1f, \"ratio\": %.3f, "
      "\"high_completed_rhs\": %llu, \"background_completed_rhs\": %llu},\n",
      prio.isolated_p99_us, prio.mixed_p99_us, prio.ratio,
      static_cast<unsigned long long>(prio.high_completed),
      static_cast<unsigned long long>(prio.background_completed));
  std::fprintf(
      f,
      "  \"packing_study\": {\"tenants\": %d, \"unpacked_rhs_per_s\": %.1f, "
      "\"packed_rhs_per_s\": %.1f, \"speedup\": %.3f, "
      "\"packed_dispatches\": %llu, \"mean_packed_plans\": %.3f}\n",
      pack.tenants, pack.off_rhs_per_s, pack.on_rhs_per_s, pack.speedup,
      static_cast<unsigned long long>(pack.packed_dispatches),
      pack.mean_packed_plans);
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  return 0;
}
