// Throughput benchmark of the multi-tenant solve service.
//
// Two load shapes, each swept over a client count:
//
//  * CLOSED loop -- every client submits one request and WAITS for the
//    reply before the next (the latency-bound shape). The 1-client closed
//    loop is the baseline the acceptance criterion compares against:
//    multi-client throughput must beat it, because concurrent clients'
//    same-plan requests coalesce into fused solve_batch calls while a
//    lone client's never can.
//
//  * OPEN loop -- clients fire submits without waiting (reaping futures in
//    the background) until backpressure pushes back; kOverloaded replies
//    are counted, not retried. This is the saturation shape: it shows the
//    admission bound holding and the coalesce width growing to the cap.
//
// Emits BENCH_service.json (override the path with
// MSPTRSV_BENCH_SERVICE_JSON) with per-point throughput, coalesce width,
// and p50/p99 latency -- the service-era companion of BENCH_batch.json.
// Exits non-zero on any solve failure or if the service's answers diverge
// from a direct plan.solve (a bench that prints numbers for wrong answers
// is worse than no bench).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "core/msptrsv.hpp"
#include "support/cli.hpp"

namespace {

using namespace msptrsv;
using Clock = std::chrono::steady_clock;

struct CasePoint {
  std::string mode;
  int clients = 1;
  double seconds = 0.0;
  std::uint64_t completed = 0;
  std::uint64_t rejected = 0;
  double throughput = 0.0;  // completed rhs / s
  double mean_width = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
};

struct Workload {
  sparse::CscMatrix lower;
  std::vector<value_t> b;
  std::vector<value_t> expected;
};

service::ServiceOptions service_options(index_t max_coalesce) {
  service::ServiceOptions opt;
  opt.max_coalesce = max_coalesce;
  // Natural batching only: no artificial wait, so the 1-client closed
  // loop is not penalized by a window it can never fill.
  opt.coalesce_window = std::chrono::microseconds(0);
  opt.max_pending_rhs = 4096;
  return opt;
}

CasePoint run_closed_loop(const Workload& w, const std::string& backend,
                          int clients, double seconds, index_t max_coalesce,
                          int& failures) {
  service::SolveService svc(service_options(max_coalesce));
  const auto plan = svc.plan_for(w.lower, backend);
  if (!plan.ok()) {
    std::fprintf(stderr, "plan_for(%s) failed: %s\n", backend.c_str(),
                 plan.message().c_str());
    ++failures;
    return {};
  }
  std::atomic<int> bad{0};
  const Clock::time_point t0 = Clock::now();
  const Clock::time_point deadline =
      t0 + std::chrono::duration_cast<Clock::duration>(
               std::chrono::duration<double>(seconds));
  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&] {
      while (Clock::now() < deadline) {
        service::SolveService::Reply r = svc.submit(*plan, w.b).get();
        if (!r.ok() || r.value().x != w.expected) bad.fetch_add(1);
      }
    });
  }
  for (std::thread& th : threads) th.join();
  svc.drain();
  const double elapsed =
      std::chrono::duration<double>(Clock::now() - t0).count();
  const service::ServiceStatsSnapshot s = svc.stats();
  failures += bad.load();

  CasePoint p;
  p.mode = "closed";
  p.clients = clients;
  p.seconds = elapsed;
  p.completed = s.completed;
  p.rejected = s.rejected;
  p.throughput = static_cast<double>(s.completed) / elapsed;
  p.mean_width = s.mean_coalesce_width;
  p.p50_us = s.p50_latency_us;
  p.p99_us = s.p99_latency_us;
  return p;
}

CasePoint run_open_loop(const Workload& w, const std::string& backend,
                        int clients, double seconds, index_t max_coalesce,
                        int& failures) {
  service::SolveService svc(service_options(max_coalesce));
  const auto plan = svc.plan_for(w.lower, backend);
  if (!plan.ok()) {
    ++failures;
    return {};
  }
  std::atomic<int> bad{0};
  const Clock::time_point t0 = Clock::now();
  const Clock::time_point deadline =
      t0 + std::chrono::duration_cast<Clock::duration>(
               std::chrono::duration<double>(seconds));
  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&] {
      std::vector<std::future<service::SolveService::Reply>> inflight;
      const auto check = [&](service::SolveService::Reply r) {
        // Backpressure is expected in an open loop; any OTHER failure --
        // or wrong bits -- must fail the bench.
        if (!r.ok()) {
          if (r.status() != core::SolveStatus::kOverloaded) bad.fetch_add(1);
        } else if (r.value().x != w.expected) {
          bad.fetch_add(1);
        }
      };
      const auto reap = [&](bool all) {
        for (auto& f : inflight) {
          if (!all &&
              f.wait_for(std::chrono::seconds(0)) != std::future_status::ready)
            continue;
          check(f.get());
          f = {};
        }
        std::erase_if(inflight, [](const auto& f) { return !f.valid(); });
      };
      while (Clock::now() < deadline) {
        auto fut = svc.submit(*plan, w.b);
        // An immediately-ready future is (almost always) backpressure:
        // yield instead of spinning the queue lock.
        if (fut.wait_for(std::chrono::seconds(0)) ==
            std::future_status::ready) {
          service::SolveService::Reply r = fut.get();
          const bool backpressured =
              !r.ok() && r.status() == core::SolveStatus::kOverloaded;
          check(std::move(r));
          if (backpressured) std::this_thread::yield();
        } else {
          inflight.push_back(std::move(fut));
        }
        if (inflight.size() >= 64) reap(false);
      }
      reap(true);
    });
  }
  for (std::thread& th : threads) th.join();
  svc.drain();
  const double elapsed =
      std::chrono::duration<double>(Clock::now() - t0).count();
  const service::ServiceStatsSnapshot s = svc.stats();
  failures += bad.load();

  CasePoint p;
  p.mode = "open";
  p.clients = clients;
  p.seconds = elapsed;
  p.completed = s.completed;
  p.rejected = s.rejected;
  p.throughput = static_cast<double>(s.completed) / elapsed;
  p.mean_width = s.mean_coalesce_width;
  p.p50_us = s.p50_latency_us;
  p.p99_us = s.p99_latency_us;
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  support::CliParser cli(
      "Solve-service throughput: open vs closed loop over a client sweep "
      "(emits BENCH_service.json)");
  cli.add_option("backend", "cpu-syncfree",
                 "registry backend key served by the benchmark");
  cli.add_option("rows", "20000", "generated factor dimension");
  cli.add_option("seconds", "0.4", "measured seconds per point");
  cli.add_option("clients", "1,2,4,8,16,32,64",
                 "comma-separated client counts");
  cli.add_option("max-coalesce", "32", "widest fused dispatch");
  if (!cli.parse(argc, argv)) return 0;

  const std::string backend = cli.get_string("backend");
  const index_t rows = static_cast<index_t>(cli.get_int("rows"));
  const double seconds = cli.get_double("seconds");
  const index_t max_coalesce =
      static_cast<index_t>(cli.get_int("max-coalesce"));
  std::vector<int> client_counts;
  for (const std::string& c : cli.get_list("clients")) {
    client_counts.push_back(std::atoi(c.c_str()));
  }

  Workload w;
  w.lower = sparse::gen_layered_dag(rows, 40, rows * 6, 0.5, 99);
  w.b = sparse::gen_rhs_for_solution(w.lower,
                                     sparse::gen_solution(w.lower.rows, 1));
  // Ground truth from a direct (non-service) plan: every service reply in
  // every configuration below must reproduce these bits.
  {
    const auto direct =
        core::registry::analyze_cached(w.lower, backend);
    if (!direct.ok()) {
      std::fprintf(stderr, "baseline analyze failed: %s\n",
                   direct.message().c_str());
      return 2;
    }
    w.expected = direct->solve(w.b).value().x;
  }

  int failures = 0;
  std::vector<CasePoint> points;
  for (const std::string& mode : {std::string("closed"), std::string("open")}) {
    for (int clients : client_counts) {
      const CasePoint p =
          mode == "closed"
              ? run_closed_loop(w, backend, clients, seconds, max_coalesce,
                                failures)
              : run_open_loop(w, backend, clients, seconds, max_coalesce,
                              failures);
      std::printf(
          "BENCH_service %-6s clients=%-3d  %8.0f rhs/s  width %5.2f  "
          "p50 %8.1f us  p99 %8.1f us  rejected %llu\n",
          p.mode.c_str(), p.clients, p.throughput, p.mean_width, p.p50_us,
          p.p99_us, static_cast<unsigned long long>(p.rejected));
      points.push_back(p);
    }
  }
  if (failures != 0) {
    std::fprintf(stderr,
                 "%d solve failures/mismatches -- refusing to emit numbers "
                 "for wrong answers\n",
                 failures);
    return 3;
  }

  // The acceptance sanity check: some multi-client CLOSED-loop point must
  // beat the single-client closed-loop baseline (coalescing has to buy
  // real throughput under the latency-bound shape, not just look busy --
  // open-loop points would trivially pass and are excluded).
  double single = 0.0, best_multi = 0.0;
  for (const CasePoint& p : points) {
    if (p.mode != "closed") continue;
    if (p.clients == 1) single = p.throughput;
    if (p.clients > 1) best_multi = std::max(best_multi, p.throughput);
  }
  if (single > 0.0 && best_multi > 0.0 && best_multi <= single) {
    std::fprintf(stderr,
                 "multi-client closed-loop throughput (%.0f rhs/s) does not "
                 "beat the single-client baseline (%.0f rhs/s)\n",
                 best_multi, single);
    return 4;
  }

  const char* path_env = std::getenv("MSPTRSV_BENCH_SERVICE_JSON");
  const std::string path = path_env ? path_env : "BENCH_service.json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 3;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"solve service open/closed loop\",\n"
               "  \"backend\": \"%s\",\n"
               "  \"matrix\": {\"rows\": %d, \"nnz\": %lld},\n"
               "  \"max_coalesce\": %d,\n  \"cases\": [\n",
               backend.c_str(), w.lower.rows,
               static_cast<long long>(w.lower.nnz()), max_coalesce);
  for (std::size_t i = 0; i < points.size(); ++i) {
    const CasePoint& p = points[i];
    std::fprintf(
        f,
        "    {\"mode\": \"%s\", \"clients\": %d, \"seconds\": %.3f, "
        "\"completed_rhs\": %llu, \"rejected_rhs\": %llu, "
        "\"throughput_rhs_per_s\": %.1f, \"mean_coalesce_width\": %.3f, "
        "\"p50_latency_us\": %.1f, \"p99_latency_us\": %.1f}%s\n",
        p.mode.c_str(), p.clients, p.seconds,
        static_cast<unsigned long long>(p.completed),
        static_cast<unsigned long long>(p.rejected), p.throughput,
        p.mean_width, p.p50_us, p.p99_us,
        i + 1 < points.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  return 0;
}
