// Level-set analysis: levels, in-degrees, and the paper's two structure
// metrics (dependency = nnz/n, parallelism = n/#levels).
#include <gtest/gtest.h>

#include <numeric>

#include "sparse/generators.hpp"
#include "sparse/level_analysis.hpp"

namespace msptrsv::sparse {
namespace {

TEST(LevelAnalysis, DiagonalIsOneLevel) {
  const LevelAnalysis a = analyze_levels(gen_diagonal(100));
  EXPECT_EQ(a.num_levels, 1);
  EXPECT_EQ(a.max_level_width, 100);
  EXPECT_DOUBLE_EQ(a.parallelism_metric(), 100.0);
}

TEST(LevelAnalysis, ChainHasNLevels) {
  const LevelAnalysis a = analyze_levels(gen_chain(64));
  EXPECT_EQ(a.num_levels, 64);
  EXPECT_EQ(a.max_level_width, 1);
  EXPECT_DOUBLE_EQ(a.parallelism_metric(), 1.0);
}

TEST(LevelAnalysis, Grid2dHasWavefrontLevels) {
  // Dependencies on west and south neighbors: #levels = nx + ny - 1.
  const LevelAnalysis a = analyze_levels(gen_grid2d_lower(13, 9));
  EXPECT_EQ(a.num_levels, 13 + 9 - 1);
}

TEST(LevelAnalysis, KnownSmallDag) {
  // Figure 1(a)'s example: x0 ready; x1,x3,x5 depend on x0; etc. Use a
  // hand-built matrix: edges 0->1, 0->3, 1->2, 3->4.
  CooMatrix coo;
  coo.rows = coo.cols = 5;
  for (index_t i = 0; i < 5; ++i) coo.add(i, i, 2.0);
  coo.add(1, 0, 1.0);
  coo.add(3, 0, 1.0);
  coo.add(2, 1, 1.0);
  coo.add(4, 3, 1.0);
  const LevelAnalysis a = analyze_levels(csc_from_coo(std::move(coo)));
  EXPECT_EQ(a.num_levels, 3);
  EXPECT_EQ(a.level_of[0], 0);
  EXPECT_EQ(a.level_of[1], 1);
  EXPECT_EQ(a.level_of[3], 1);
  EXPECT_EQ(a.level_of[2], 2);
  EXPECT_EQ(a.level_of[4], 2);
}

TEST(LevelAnalysis, InDegreesSumToOffDiagonalNnz) {
  const CscMatrix m = gen_layered_dag(800, 25, 4800, 0.4, 7);
  const std::vector<index_t> indeg = compute_in_degrees(m);
  const offset_t sum = std::accumulate(indeg.begin(), indeg.end(), offset_t{0});
  EXPECT_EQ(sum, m.nnz() - m.rows);
}

TEST(LevelAnalysis, LevelPtrPartitionsAllComponents) {
  const CscMatrix m = gen_rmat_lower(9, 2000, 3);
  const LevelAnalysis a = analyze_levels(m);
  EXPECT_EQ(a.level_ptr.front(), 0);
  EXPECT_EQ(a.level_ptr.back(), static_cast<offset_t>(m.rows));
  // Every component appears exactly once in `order`.
  std::vector<bool> seen(static_cast<std::size_t>(m.rows), false);
  for (index_t c : a.order) {
    EXPECT_FALSE(seen[static_cast<std::size_t>(c)]);
    seen[static_cast<std::size_t>(c)] = true;
  }
}

TEST(LevelAnalysis, LevelRespectsAllDependencies) {
  const CscMatrix m = gen_random_lower(400, 5.0, 11);
  const LevelAnalysis a = analyze_levels(m);
  for (index_t j = 0; j < m.cols; ++j) {
    for (offset_t k = m.col_ptr[j] + 1; k < m.col_ptr[j + 1]; ++k) {
      EXPECT_LT(a.level_of[static_cast<std::size_t>(j)],
                a.level_of[static_cast<std::size_t>(m.row_idx[k])]);
    }
  }
}

TEST(LevelAnalysis, LayeredDagHitsExactTargets) {
  for (index_t levels : {1, 2, 7, 40, 200}) {
    const CscMatrix m = gen_layered_dag(2000, levels, 9000, 0.5, 17);
    const LevelAnalysis a = analyze_levels(m);
    EXPECT_EQ(a.num_levels, levels) << "levels=" << levels;
  }
}

TEST(LevelAnalysis, DependencyMetricMatchesDefinition) {
  const CscMatrix m = gen_banded(500, 6, 0.5, 23);
  const LevelAnalysis a = analyze_levels(m);
  EXPECT_DOUBLE_EQ(a.dependency_metric(),
                   static_cast<double>(m.nnz()) / m.rows);
}

}  // namespace
}  // namespace msptrsv::sparse
