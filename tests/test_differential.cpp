// Cross-backend differential harness.
//
// One seeded sweep drives every host execution strategy through the same
// inputs -- {lower, upper} x {serial, cpu-levelset, cpu-syncfree,
// cpu-taskgraph} x {1, 4 threads} x {column-major, interleaved} x
// {solve, solve_batch, update_values-then-solve} -- and holds the results
// to two contracts at once:
//
//  * numerics: every configuration reproduces the serial reference to
//    tight relative tolerance (the serial sweep is PUSH-based, so its
//    summation order legitimately differs);
//  * bits: the pull-based host-parallel backends (cpu-levelset,
//    cpu-syncfree, cpu-taskgraph) gather in ascending-column row order BY
//    CONSTRUCTION, independent of schedule, thread count, and layout --
//    so all of them must agree bit for bit, across every configuration.
//
// A failing comparison dumps the matrix to a Matrix Market file next to
// the test binary (name embeds the case tag and seed) so the exact
// instance can be replayed offline.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/msptrsv.hpp"
#include "sparse/mmio.hpp"

namespace msptrsv {
namespace {

using core::RhsLayout;

struct MatrixCase {
  std::string tag;
  std::uint64_t seed;
  sparse::CscMatrix lower;
};

std::vector<MatrixCase> matrix_cases() {
  std::vector<MatrixCase> out;
  for (std::uint64_t seed : {7u, 19u}) {
    out.push_back({"layered", seed,
                   sparse::gen_layered_dag(300, 24, 1600, 0.5, seed)});
    out.push_back({"chain_heavy", seed,
                   sparse::gen_chain_heavy(5, 20, 10, 2, seed)});
    out.push_back({"random", seed, sparse::gen_random_lower(250, 3.0, seed)});
    out.push_back({"banded", seed, sparse::gen_banded(220, 5, 0.7, seed)});
  }
  return out;
}

struct Config {
  const char* backend;
  int threads;
  RhsLayout layout;
  std::string label() const {
    return std::string(backend) + "/t" + std::to_string(threads) +
           (layout == RhsLayout::kInterleaved ? "/interleaved" : "/colmajor");
  }
};

std::vector<Config> configs() {
  std::vector<Config> out;
  for (const char* b :
       {"serial", "cpu-levelset", "cpu-syncfree", "cpu-taskgraph"}) {
    for (int t : {1, 4}) {
      for (RhsLayout l : {RhsLayout::kColumnMajor, RhsLayout::kInterleaved}) {
        out.push_back({b, t, l});
      }
    }
  }
  return out;
}

core::SolveOptions options_of(const Config& c) {
  core::SolveOptions o = core::registry::options_for(c.backend).value();
  o.cpu_threads = c.threads;
  o.rhs_layout = c.layout;
  return o;
}

/// The three results one configuration produces from one matrix. The
/// update op runs LAST on its plan, so solve/batch see original values.
struct Results {
  std::vector<value_t> solve;
  std::vector<value_t> batch;
  std::vector<value_t> updated;
};

constexpr index_t kBatchRhs = 3;

Results run_all_ops(const sparse::CscMatrix& factor, bool upper,
                    const core::SolveOptions& opt,
                    const std::vector<value_t>& b,
                    const std::vector<value_t>& batch,
                    const sparse::CscMatrix& scaled) {
  auto plan = upper ? core::SolverPlan::analyze_upper(
                          sparse::CscMatrix(factor), opt)
                    : core::SolverPlan::analyze(sparse::CscMatrix(factor),
                                                opt);
  EXPECT_TRUE(plan.ok()) << plan.message();
  Results r;
  const auto rs = plan->solve(b);
  EXPECT_TRUE(rs.ok()) << rs.message();
  r.solve = rs.value().x;
  const auto rb = plan->solve_batch(batch, kBatchRhs);
  EXPECT_TRUE(rb.ok()) << rb.message();
  r.batch = rb.value().x;
  const auto up = plan->update_values(scaled);
  EXPECT_TRUE(up.ok()) << up.message();
  const auto ru = plan->solve(b);
  EXPECT_TRUE(ru.ok()) << ru.message();
  r.updated = ru.value().x;
  return r;
}

/// On mismatch, persists the failing instance as Matrix Market and
/// returns the artifact path for the failure message.
std::string dump_artifact(const MatrixCase& m, bool upper,
                          const sparse::CscMatrix& factor) {
  const std::string path = "differential_" + m.tag + "_seed" +
                           std::to_string(m.seed) +
                           (upper ? "_upper" : "_lower") + ".mtx";
  sparse::write_matrix_market_file(path, factor);
  return path;
}

void expect_close(const std::vector<value_t>& got,
                  const std::vector<value_t>& want, const char* op,
                  const std::string& label, const MatrixCase& m, bool upper,
                  const sparse::CscMatrix& factor) {
  ASSERT_EQ(got.size(), want.size());
  if (core::max_relative_difference(got, want) >= 1e-10) {
    FAIL() << label << " " << op << " diverges from the serial reference on "
           << m.tag << " seed " << m.seed
           << "; instance dumped to " << dump_artifact(m, upper, factor);
  }
}

void expect_bits(const std::vector<value_t>& got,
                 const std::vector<value_t>& want, const char* op,
                 const std::string& label, const MatrixCase& m, bool upper,
                 const sparse::CscMatrix& factor) {
  if (got != want) {
    FAIL() << label << " " << op
           << " is not bit-identical to cpu-levelset/t1/colmajor on "
           << m.tag << " seed " << m.seed
           << "; instance dumped to " << dump_artifact(m, upper, factor);
  }
}

TEST(Differential, HostBackendsAgreeAcrossEveryConfiguration) {
  const std::vector<Config> sweep = configs();
  for (const MatrixCase& m : matrix_cases()) {
    for (const bool upper : {false, true}) {
      const sparse::CscMatrix factor =
          upper ? sparse::transpose(m.lower) : sparse::CscMatrix(m.lower);
      const index_t n = factor.rows;
      SCOPED_TRACE(m.tag + " seed " + std::to_string(m.seed) +
                   (upper ? " upper" : " lower"));

      const std::vector<value_t> b = sparse::gen_rhs_for_solution(
          factor, sparse::gen_solution(n, m.seed + 1));
      std::vector<value_t> batch;
      for (index_t j = 0; j < kBatchRhs; ++j) {
        const std::vector<value_t> bj = sparse::gen_rhs_for_solution(
            factor, sparse::gen_solution(n, m.seed + 10 + j));
        batch.insert(batch.end(), bj.begin(), bj.end());
      }
      // Value refresh under the same sparsity: scale off-diagonals so the
      // update actually changes every solve.
      sparse::CscMatrix scaled = factor;
      for (value_t& v : scaled.val) v *= 1.0 + 1.0 / 64.0;

      // Tolerance reference: serial. Bitwise reference: the narrowest
      // pull-based configuration.
      Config serial_ref{"serial", 1, RhsLayout::kColumnMajor};
      Config bits_ref{"cpu-levelset", 1, RhsLayout::kColumnMajor};
      const Results ref =
          run_all_ops(factor, upper, options_of(serial_ref), b, batch, scaled);
      const Results gold =
          run_all_ops(factor, upper, options_of(bits_ref), b, batch, scaled);

      for (const Config& c : sweep) {
        const std::string label = c.label();
        SCOPED_TRACE(label);
        const Results r =
            run_all_ops(factor, upper, options_of(c), b, batch, scaled);
        expect_close(r.solve, ref.solve, "solve", label, m, upper, factor);
        expect_close(r.batch, ref.batch, "solve_batch", label, m, upper,
                     factor);
        expect_close(r.updated, ref.updated, "update+solve", label, m, upper,
                     factor);
        if (std::string(c.backend) != "serial") {
          expect_bits(r.solve, gold.solve, "solve", label, m, upper, factor);
          expect_bits(r.batch, gold.batch, "solve_batch", label, m, upper,
                      factor);
          expect_bits(r.updated, gold.updated, "update+solve", label, m,
                      upper, factor);
        }
      }
    }
  }
}

TEST(Differential, SerialIsDeterministicAcrossLayouts) {
  // The serial sweep has one summation order too: its column-major and
  // (explicitly requested) interleaved paths must agree bit for bit.
  const sparse::CscMatrix l = sparse::gen_layered_dag(300, 24, 1600, 0.5, 3);
  std::vector<value_t> batch;
  for (index_t j = 0; j < kBatchRhs; ++j) {
    const std::vector<value_t> bj = sparse::gen_rhs_for_solution(
        l, sparse::gen_solution(l.rows, 40 + static_cast<std::uint64_t>(j)));
    batch.insert(batch.end(), bj.begin(), bj.end());
  }
  core::SolveOptions col = core::registry::options_for("serial").value();
  col.rhs_layout = RhsLayout::kColumnMajor;
  core::SolveOptions inter = col;
  inter.rhs_layout = RhsLayout::kInterleaved;
  const auto pc = core::SolverPlan::analyze(sparse::CscMatrix(l), col);
  const auto pi = core::SolverPlan::analyze(sparse::CscMatrix(l), inter);
  ASSERT_TRUE(pc.ok() && pi.ok());
  EXPECT_EQ(pc->solve_batch(batch, kBatchRhs).value().x,
            pi->solve_batch(batch, kBatchRhs).value().x);
}

}  // namespace
}  // namespace msptrsv
