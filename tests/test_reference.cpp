// Serial reference solvers: forward, backward, and the upper->lower
// reduction used by the parallel backends.
#include <gtest/gtest.h>

#include "core/reference.hpp"
#include "core/residual.hpp"
#include "sparse/generators.hpp"
#include "sparse/triangular.hpp"
#include "support/contracts.hpp"

namespace msptrsv {
namespace {

using core::max_relative_difference;
using core::relative_residual;
using core::reverse_upper_to_lower;
using core::reversed;
using core::solve_lower_serial;
using core::solve_upper_serial;

TEST(Reference, SolvesIdentity) {
  const sparse::CscMatrix d = sparse::gen_diagonal(8);
  std::vector<value_t> b(8, 0.0);
  for (int i = 0; i < 8; ++i) b[static_cast<std::size_t>(i)] = i + 1.0;
  const std::vector<value_t> x = solve_lower_serial(d, b);
  for (int i = 0; i < 8; ++i) {
    EXPECT_DOUBLE_EQ(x[static_cast<std::size_t>(i)],
                     b[static_cast<std::size_t>(i)] /
                         d.val[static_cast<std::size_t>(d.col_ptr[i])]);
  }
}

TEST(Reference, KnownThreeByThree) {
  // L = [2 0 0; 1 4 0; 3 5 8], b = [2, 6, 24] -> x = [1, 1.25, 1.84375].
  sparse::CooMatrix coo;
  coo.rows = coo.cols = 3;
  coo.add(0, 0, 2.0);
  coo.add(1, 0, 1.0);
  coo.add(1, 1, 4.0);
  coo.add(2, 0, 3.0);
  coo.add(2, 1, 5.0);
  coo.add(2, 2, 8.0);
  const sparse::CscMatrix l = sparse::csc_from_coo(std::move(coo));
  const std::vector<value_t> b = {2.0, 6.0, 24.0};
  const std::vector<value_t> x = solve_lower_serial(l, b);
  EXPECT_DOUBLE_EQ(x[0], 1.0);
  EXPECT_DOUBLE_EQ(x[1], 1.25);
  EXPECT_DOUBLE_EQ(x[2], (24.0 - 3.0 * 1.0 - 5.0 * 1.25) / 8.0);
}

TEST(Reference, ManufacturedSolutionRoundTrips) {
  const sparse::CscMatrix l = sparse::gen_random_lower(500, 6.0, 7);
  const std::vector<value_t> x_ref = sparse::gen_solution(l.rows, 3);
  const std::vector<value_t> b = sparse::gen_rhs_for_solution(l, x_ref);
  const std::vector<value_t> x = solve_lower_serial(l, b);
  EXPECT_LT(max_relative_difference(x, x_ref), 1e-11);
  EXPECT_LT(relative_residual(l, x, b), 1e-12);
}

TEST(Reference, RejectsWrongRhsLength) {
  const sparse::CscMatrix l = sparse::gen_chain(10);
  std::vector<value_t> b(9, 1.0);
  EXPECT_THROW(solve_lower_serial(l, b), support::PreconditionError);
}

TEST(Reference, RejectsMissingDiagonal) {
  sparse::CooMatrix coo;
  coo.rows = coo.cols = 2;
  coo.add(0, 0, 1.0);
  coo.add(1, 0, 1.0);  // no (1,1) entry
  const sparse::CscMatrix l = sparse::csc_from_coo(std::move(coo));
  std::vector<value_t> b(2, 1.0);
  EXPECT_THROW(solve_lower_serial(l, b), support::PreconditionError);
}

TEST(Reference, BackwardSubstitutionSolvesUpper) {
  const sparse::CscMatrix lower = sparse::gen_banded(200, 4, 0.7, 21);
  const sparse::CscMatrix upper = sparse::mirror_to_upper(lower);
  const std::vector<value_t> x_ref = sparse::gen_solution(upper.rows, 5);
  const std::vector<value_t> b = sparse::multiply(upper, x_ref);
  const std::vector<value_t> x = solve_upper_serial(upper, b);
  EXPECT_LT(max_relative_difference(x, x_ref), 1e-10);
}

TEST(Reference, ReverseUpperToLowerAgreesWithBackward) {
  const sparse::CscMatrix lower = sparse::gen_random_lower(300, 4.0, 9);
  const sparse::CscMatrix upper = sparse::mirror_to_upper(lower);
  const std::vector<value_t> x_ref = sparse::gen_solution(upper.rows, 11);
  const std::vector<value_t> b = sparse::multiply(upper, x_ref);

  const std::vector<value_t> direct = solve_upper_serial(upper, b);
  const sparse::CscMatrix as_lower = reverse_upper_to_lower(upper);
  const std::vector<value_t> via_lower =
      reversed(solve_lower_serial(as_lower, reversed(b)));

  EXPECT_LT(max_relative_difference(via_lower, direct), 1e-12);
}

TEST(Reference, ReversedIsInvolution) {
  const std::vector<value_t> v = {1.0, 2.0, 3.0, 4.0};
  EXPECT_EQ(reversed(reversed(v)), v);
}

}  // namespace
}  // namespace msptrsv
