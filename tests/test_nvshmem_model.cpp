// NVSHMEM/PGAS model: symmetric heap, one-sided ops, gather-reduce.
#include <gtest/gtest.h>

#include <cmath>

#include "sim/nvshmem.hpp"
#include "support/contracts.hpp"

namespace msptrsv::sim {
namespace {

struct NvFixture {
  Topology topo = Topology::dgx1(4);
  CostModel cost;
  Interconnect net{topo, cost};
  NvshmemModel nv{net, cost, 4};
};

TEST(Nvshmem, SymmetricAllocationAccumulatesPerPe) {
  NvFixture f;
  EXPECT_DOUBLE_EQ(f.nv.symmetric_alloc(1000.0), 0.0);
  EXPECT_DOUBLE_EQ(f.nv.symmetric_alloc(500.0), 1000.0);
  EXPECT_DOUBLE_EQ(f.nv.symmetric_heap_bytes(), 1500.0);
}

TEST(Nvshmem, GetPaysOverheadAndWire) {
  NvFixture f;
  const sim_time_t t = f.nv.get(0, 1, 8.0, 100.0);
  EXPECT_GE(t, 100.0 + f.cost.get_overhead_us + f.cost.hop_latency_us);
  EXPECT_EQ(f.nv.stats().gets, 1u);
  EXPECT_GT(f.net.total_bytes(), 0.0);
}

TEST(Nvshmem, LocalGetIsCheap) {
  NvFixture f;
  const sim_time_t t = f.nv.get(2, 2, 8.0, 10.0);
  EXPECT_NEAR(t, 10.0 + f.cost.atomic_local_us, 1e-9);
  EXPECT_DOUBLE_EQ(f.net.total_bytes(), 0.0);
}

TEST(Nvshmem, PutMirrorsGetDirection) {
  NvFixture f;
  f.nv.put(0, 3, 8.0, 0.0);
  // Data flows local -> remote for put: the 0->3 route carries the bytes.
  double bytes_on_0_to_3 = 0.0;
  for (int id = 0; id < f.topo.num_links(); ++id) {
    const LinkSpec& l = f.topo.link(id);
    if (l.src == 0 && l.dst == 3) bytes_on_0_to_3 += f.net.link_stats(id).bytes;
  }
  EXPECT_DOUBLE_EQ(bytes_on_0_to_3, 8.0);
}

TEST(Nvshmem, FenceCostsAndCounts) {
  NvFixture f;
  const sim_time_t t = f.nv.fence(10.0);
  EXPECT_DOUBLE_EQ(t, 10.0 + f.cost.fence_us);
  EXPECT_EQ(f.nv.stats().fences, 1u);
}

TEST(Nvshmem, GatherReduceIsParallelAcrossPes) {
  NvFixture f;
  const std::vector<int> all = {1, 2, 3};
  const sim_time_t gather3 = f.nv.gather_reduce(0, all, 4.0, 0.0);
  Interconnect net2(f.topo, f.cost);
  NvshmemModel nv2(net2, f.cost, 4);
  const std::vector<int> one = {1};
  const sim_time_t gather1 = nv2.gather_reduce(0, one, 4.0, 0.0);
  // Lanes issue in parallel: gathering from 3 PEs costs at most one extra
  // reduction step over gathering from 1, not 3x.
  EXPECT_LT(gather3, 2.0 * gather1);
  EXPECT_EQ(f.nv.stats().gather_reductions, 1u);
  EXPECT_EQ(f.nv.stats().gets, 3u);
}

TEST(Nvshmem, GatherReduceUsesLogReduction) {
  // Completion difference between 2 lanes and 4 lanes on a uniform network
  // is exactly one shuffle step.
  const Topology topo = Topology::all_to_all(8, 25.0);
  const CostModel cost;
  Interconnect netA(topo, cost), netB(topo, cost);
  NvshmemModel a(netA, cost, 8), b(netB, cost, 8);
  const std::vector<int> one = {1};            // 2 lanes -> 1 step
  const std::vector<int> three = {1, 2, 3};    // 4 lanes -> 2 steps
  const sim_time_t ta = a.gather_reduce(0, one, 4.0, 0.0);
  const sim_time_t tb = b.gather_reduce(0, three, 4.0, 0.0);
  EXPECT_NEAR(tb - ta, cost.shuffle_us, 1e-9);
}

TEST(Nvshmem, PollVisibilityDelayOrdersWithDistance) {
  const CostModel cost;
  const Topology topo = Topology::dgx1(8);
  Interconnect net(topo, cost);
  NvshmemModel nv(net, cost, 8);
  // Local observation is cheapest; 2-hop remote costs more than 1-hop.
  const sim_time_t local = nv.poll_visibility_delay(0, 0);
  const sim_time_t near = nv.poll_visibility_delay(0, 4);   // direct link
  const sim_time_t far = nv.poll_visibility_delay(0, 5);    // 2 hops
  EXPECT_LT(local, near);
  EXPECT_LT(near, far);
}

TEST(Nvshmem, PeBoundsChecked) {
  NvFixture f;
  EXPECT_THROW(f.nv.get(0, 4, 8.0, 0.0), support::PreconditionError);
  EXPECT_THROW(f.nv.put(-1, 0, 8.0, 0.0), support::PreconditionError);
}

}  // namespace
}  // namespace msptrsv::sim
