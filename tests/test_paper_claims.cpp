// Qualitative reproduction of the paper's claims: these tests assert the
// *shapes* of the evaluation (who wins, what grows, what stays flat), not
// absolute numbers. If a cost-model change breaks one of these, the
// reproduction no longer tells the paper's story.
#include <gtest/gtest.h>

#include <vector>

#include "core/msptrsv.hpp"

namespace msptrsv {
namespace {

core::SolveResult run(const sparse::CscMatrix& l,
                      const std::vector<value_t>& b, core::Backend backend,
                      sim::Machine machine, int tasks_per_gpu = 8) {
  core::SolveOptions o;
  o.backend = backend;
  o.machine = std::move(machine);
  o.tasks_per_gpu = tasks_per_gpu;
  return core::solve(l, b, o);
}

/// A communication-heavy workload: moderate parallelism, low locality, so
/// many dependency edges cross GPU boundaries and level widths exceed the
/// per-GPU warp residency (the regime the paper's task model targets).
sparse::CscMatrix thrash_prone_matrix() {
  return sparse::gen_layered_dag(24000, 60, 144000, 0.15, 77);
}

/// A high-parallelism workload (the paper's nlpkkt160-like case).
sparse::CscMatrix high_parallelism_matrix() {
  return sparse::gen_layered_dag(24000, 4, 120000, 0.3, 78);
}

std::vector<value_t> rhs_for(const sparse::CscMatrix& l) {
  return sparse::gen_rhs_for_solution(l, sparse::gen_solution(l.rows, 9));
}

// ---- Section III / Fig. 3 ------------------------------------------------

TEST(PaperClaims, Fig3PageFaultsGrowWithGpuCount) {
  const sparse::CscMatrix l = thrash_prone_matrix();
  const std::vector<value_t> b = rhs_for(l);
  const auto r2 = run(l, b, core::Backend::kMgUnified, sim::Machine::dgx1(2));
  const auto r4 = run(l, b, core::Backend::kMgUnified, sim::Machine::dgx1(4));
  const auto r8 = run(l, b, core::Backend::kMgUnified, sim::Machine::dgx1(8));
  EXPECT_GT(r2.report.page_faults, 0u);
  EXPECT_GT(r4.report.page_faults, r2.report.page_faults);
  EXPECT_GT(r8.report.page_faults, r4.report.page_faults);
}

TEST(PaperClaims, Fig3UnifiedPerformanceDegradesWithGpuCount) {
  const sparse::CscMatrix l = thrash_prone_matrix();
  const std::vector<value_t> b = rhs_for(l);
  const auto r2 = run(l, b, core::Backend::kMgUnified, sim::Machine::dgx1(2));
  const auto r8 = run(l, b, core::Backend::kMgUnified, sim::Machine::dgx1(8));
  // More GPUs, more thrashing, slower solve (the paper's key negative
  // result for unified memory).
  EXPECT_GT(r8.report.total_us(), r2.report.total_us());
}

// ---- Section IV / Fig. 7 ---------------------------------------------------

TEST(PaperClaims, Fig7DesignOrderingOnDgx1) {
  const sparse::CscMatrix l = thrash_prone_matrix();
  const std::vector<value_t> b = rhs_for(l);
  const sim::Machine m = sim::Machine::dgx1(4);
  const auto unified = run(l, b, core::Backend::kMgUnified, m);
  const auto unified_task = run(l, b, core::Backend::kMgUnifiedTask, m);
  const auto shmem = run(l, b, core::Backend::kMgShmem, m);
  const auto zerocopy = run(l, b, core::Backend::kMgZeroCopy, m);

  // Task model on unified memory makes thrashing worse (~11% in the paper).
  EXPECT_GT(unified_task.report.total_us(), unified.report.total_us());
  EXPECT_GE(unified_task.report.page_faults, unified.report.page_faults);
  // NVSHMEM removes the page traffic entirely and wins.
  EXPECT_EQ(shmem.report.page_faults, 0u);
  EXPECT_LT(shmem.report.total_us(), unified.report.total_us());
  // The task pool on top of NVSHMEM wins again (balance).
  EXPECT_LT(zerocopy.report.total_us(), shmem.report.total_us());
}

TEST(PaperClaims, Fig7TaskModelImprovesBalance) {
  const sparse::CscMatrix l = thrash_prone_matrix();
  const std::vector<value_t> b = rhs_for(l);
  const sim::Machine m = sim::Machine::dgx1(4);
  const auto shmem = run(l, b, core::Backend::kMgShmem, m);
  const auto zerocopy = run(l, b, core::Backend::kMgZeroCopy, m);
  EXPECT_LT(zerocopy.report.load_imbalance(), shmem.report.load_imbalance());
}

// ---- Section V / Fig. 9 ----------------------------------------------------

TEST(PaperClaims, Fig9MoreTasksHelpUntilLaunchOverheadDominates) {
  const sparse::CscMatrix l = thrash_prone_matrix();
  const std::vector<value_t> b = rhs_for(l);
  const sim::Machine m = sim::Machine::dgx1(4);
  const auto t4 = run(l, b, core::Backend::kMgZeroCopy, m, 4);
  const auto t16 = run(l, b, core::Backend::kMgZeroCopy, m, 16);
  const auto t512 = run(l, b, core::Backend::kMgZeroCopy, m, 512);
  // 16 tasks/GPU beat 4 (load balance)...
  EXPECT_LT(t16.report.total_us(), t4.report.total_us());
  // ...but extreme task counts pay launch overhead (the trade-off).
  EXPECT_GT(t512.report.total_us(), t16.report.total_us());
  EXPECT_GT(t512.report.kernel_launches, t16.report.kernel_launches);
}

// ---- Section VI / Fig. 10 --------------------------------------------------

TEST(PaperClaims, Fig10ZerocopyScalesOnHighParallelismMatrices) {
  const sparse::CscMatrix l = high_parallelism_matrix();
  const std::vector<value_t> b = rhs_for(l);
  const auto g2 = run(l, b, core::Backend::kMgZeroCopy, sim::Machine::dgx1(2),
                      16);
  const auto g4 = run(l, b, core::Backend::kMgZeroCopy, sim::Machine::dgx1(4),
                      8);
  EXPECT_LT(g4.report.total_us(), g2.report.total_us());
}

TEST(PaperClaims, Fig10Dgx1ActiveBandwidthGrowsDgx2Constant) {
  // The paper's explanation of the DGX-1 vs DGX-2 scaling difference.
  const auto d1_2 = sim::Topology::dgx1(2);
  const auto d1_4 = sim::Topology::dgx1(4);
  EXPECT_GT(d1_4.active_bandwidth_gbs(0), d1_2.active_bandwidth_gbs(0));
  const auto d2_4 = sim::Topology::dgx2(4);
  const auto d2_16 = sim::Topology::dgx2(16);
  EXPECT_DOUBLE_EQ(d2_16.active_bandwidth_gbs(0),
                   d2_4.active_bandwidth_gbs(0));
}

TEST(PaperClaims, Fig10SingleGpuSyncFreeBeatsLevelSetOnDeepMatrices) {
  // Many levels -> csrsv2 pays a sync per level; sync-free does not.
  const sparse::CscMatrix l = sparse::gen_layered_dag(4000, 800, 20000, 0.6, 3);
  const std::vector<value_t> b = rhs_for(l);
  const auto levelset =
      run(l, b, core::Backend::kGpuLevelSet, sim::Machine::dgx1(1));
  const auto syncfree =
      run(l, b, core::Backend::kMgZeroCopy, sim::Machine::dgx1(1), 1);
  EXPECT_LT(syncfree.report.solve_us, levelset.report.solve_us);
}

// ---- Mechanism sanity ------------------------------------------------------

TEST(PaperClaims, ZerocopyHasNoPageTrafficUnifiedHasNoGets) {
  const sparse::CscMatrix l = thrash_prone_matrix();
  const std::vector<value_t> b = rhs_for(l);
  const sim::Machine m = sim::Machine::dgx1(4);
  const auto unified = run(l, b, core::Backend::kMgUnified, m);
  const auto zerocopy = run(l, b, core::Backend::kMgZeroCopy, m);
  EXPECT_EQ(unified.report.nvshmem_gets, 0u);
  EXPECT_GT(unified.report.page_faults, 0u);
  EXPECT_EQ(zerocopy.report.page_faults, 0u);
  EXPECT_GT(zerocopy.report.nvshmem_gets, 0u);
}

TEST(PaperClaims, SingleGpuRunsAreCommunicationFree) {
  const sparse::CscMatrix l = thrash_prone_matrix();
  const std::vector<value_t> b = rhs_for(l);
  const auto r = run(l, b, core::Backend::kMgZeroCopy, sim::Machine::dgx1(1), 4);
  EXPECT_EQ(r.report.remote_updates, 0u);
  EXPECT_EQ(r.report.link_bytes, 0.0);
}

TEST(PaperClaims, NaiveGetUpdatePutLosesToReadOnlyModel) {
  const sparse::CscMatrix l = thrash_prone_matrix();
  const std::vector<value_t> b = rhs_for(l);
  const sim::Machine m = sim::Machine::dgx1(4);
  core::SolveOptions naive;
  naive.backend = core::Backend::kMgZeroCopy;
  naive.machine = m;
  naive.nvshmem.naive_get_update_put = true;
  const auto naive_r = core::solve(l, b, naive);
  const auto zerocopy = run(l, b, core::Backend::kMgZeroCopy, m);
  EXPECT_GT(naive_r.report.total_us(), zerocopy.report.total_us());
  EXPECT_GT(naive_r.report.nvshmem_fences, 0u);
  EXPECT_EQ(zerocopy.report.nvshmem_fences, 0u);
}

TEST(PaperClaims, GatherFromAllPesCostsMoreTraffic) {
  const sparse::CscMatrix l = thrash_prone_matrix();
  const std::vector<value_t> b = rhs_for(l);
  const sim::Machine m = sim::Machine::dgx1(4);
  core::SolveOptions all;
  all.backend = core::Backend::kMgZeroCopy;
  all.machine = m;
  all.nvshmem.gather_from_all_pes = true;
  const auto all_r = core::solve(l, b, all);
  const auto cached = run(l, b, core::Backend::kMgZeroCopy, m);
  EXPECT_GT(all_r.report.nvshmem_gets, cached.report.nvshmem_gets);
}

}  // namespace
}  // namespace msptrsv
