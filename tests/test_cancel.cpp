// Cooperative cancellation and execution budgets (core/cancel.hpp).
//
// The contract under test: a fired CancelToken stops a host-kernel solve
// MID-EXECUTION -- kDeadlineExceeded for an expired deadline
// (SolveOptions::time_budget), kOverloaded for a raised flag (the
// service's abandon path) -- and the plan plus its leased workspace are
// IMMEDIATELY reusable: the very next solve on the same plan must succeed
// bit-for-bit.
//
// Timing discipline: the mid-solve tests never sleep-and-hope. They park
// the kernel at a failpoint seam (kernel.level / kernel.task), PROVE it is
// parked via failpoint_wait_hits, fire the token, release the seam, and
// assert on the typed result -- the abort is observed at a kernel boundary
// the test controls, not at a wall-clock coincidence.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "core/msptrsv.hpp"
#include "support/failpoint.hpp"

namespace msptrsv {
namespace {

using core::CancelSource;
using core::CancelToken;
using core::SolveStatus;

core::SolveOptions opts(const char* key, int threads = 2) {
  core::SolveOptions o = core::registry::options_for(key).value();
  o.cpu_threads = threads;
  return o;
}

struct Problem {
  sparse::CscMatrix l;
  std::vector<value_t> x_ref;
  std::vector<value_t> b;
};

Problem layered_problem(index_t n = 800) {
  Problem p;
  p.l = sparse::gen_layered_dag(n, 20, 5 * n, 0.5, 71);
  p.x_ref = sparse::gen_solution(n, 72);
  p.b = sparse::gen_rhs_for_solution(p.l, p.x_ref);
  return p;
}

/// A fully sequential chain: every component depends on its predecessor,
/// so while one worker is parked on component i, no other worker can
/// steal the rest of the solve out from under the test.
Problem chain_problem(index_t n = 800) {
  Problem p;
  p.l = sparse::gen_chain(n);
  p.x_ref = sparse::gen_solution(n, 73);
  p.b = sparse::gen_rhs_for_solution(p.l, p.x_ref);
  return p;
}

class CancelFixture : public ::testing::Test {
 protected:
  void TearDown() override { support::failpoint_clear_all(); }
};

// ---- token semantics -------------------------------------------------------

TEST(CancelToken, DefaultTokenIsInert) {
  const CancelToken t;
  EXPECT_FALSE(t.active());
  EXPECT_FALSE(t.cancelled());
  EXPECT_FALSE(t.flag_cancelled());
  EXPECT_FALSE(t.deadline_expired());
}

TEST(CancelToken, BudgetTokenExpires) {
  const CancelToken expired = CancelToken::with_budget(0.0);
  EXPECT_TRUE(expired.active());
  EXPECT_TRUE(expired.deadline_expired());
  EXPECT_FALSE(expired.flag_cancelled());

  const CancelToken generous = CancelToken::with_budget(3600.0);
  EXPECT_TRUE(generous.active());
  EXPECT_FALSE(generous.cancelled());
}

TEST(CancelToken, CappedKeepsTheEarlierDeadlineAndTheFlag) {
  // Capping a generous budget tightens it; capping a tight one does not
  // loosen it.
  EXPECT_TRUE(CancelToken::with_budget(3600.0).capped(0.0).deadline_expired());
  EXPECT_FALSE(CancelToken::with_budget(3600.0).capped(60.0).cancelled());
  EXPECT_TRUE(CancelToken::with_budget(0.0).capped(3600.0).deadline_expired());

  CancelSource src;
  const CancelToken both = src.token().capped(3600.0);
  EXPECT_FALSE(both.cancelled());
  src.cancel();
  EXPECT_TRUE(both.flag_cancelled());
  EXPECT_FALSE(both.deadline_expired());
}

TEST(CancelToken, SourceFlipsEveryTokenHandedOut) {
  CancelSource src;
  const CancelToken t1 = src.token();
  const CancelToken t2 = src.token();
  EXPECT_FALSE(t1.cancelled());
  src.cancel();
  EXPECT_TRUE(t1.cancelled());
  EXPECT_TRUE(t2.cancelled());
  EXPECT_TRUE(src.cancelled());
  EXPECT_TRUE(src.token().cancelled());  // fired sources hand out fired tokens
}

// ---- plan-level budgets ----------------------------------------------------

TEST(CancelSolve, ExpiredTokenIsRefusedAtEntryAndPlanStaysUsable) {
  const Problem p = layered_problem();
  const auto plan =
      core::SolverPlan::analyze(p.l, opts("cpu-levelset"));
  ASSERT_TRUE(plan.ok());

  const auto refused = plan->solve(p.b, CancelToken::with_budget(0.0));
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status(), SolveStatus::kDeadlineExceeded);

  const auto after = plan->solve(p.b);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.value().x, plan->solve(p.b).value().x);
}

TEST(CancelSolve, TimeBudgetOptionActsAsAnExecutionDeadline) {
  // A plan whose own options carry an (immediately exhausted) budget
  // refuses even the plain solve() overloads -- no token plumbing needed
  // at the call site.
  const Problem p = layered_problem();
  core::SolveOptions o = opts("cpu-syncfree");
  o.time_budget = 1e-12;
  const auto plan = core::SolverPlan::analyze(p.l, o);
  ASSERT_TRUE(plan.ok());

  const auto refused = plan->solve(p.b);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status(), SolveStatus::kDeadlineExceeded);

  const auto batch = plan->solve_batch(p.b, 1);
  ASSERT_FALSE(batch.ok());
  EXPECT_EQ(batch.status(), SolveStatus::kDeadlineExceeded);
}

TEST_F(CancelFixture, LevelsetAbortsMidSolveAndTheWorkspaceIsReusable) {
  if (!support::failpoints_compiled()) GTEST_SKIP();
  const Problem p = layered_problem();
  const auto plan =
      core::SolverPlan::analyze(p.l, opts("cpu-levelset"));
  ASSERT_TRUE(plan.ok());
  const std::vector<value_t> good = plan->solve(p.b).value().x;

  // Park the kernel at the first level boundary, prove it is parked,
  // raise the abandon flag, release -- the very next boundary check sees
  // the flag and aborts with the barrier still coherent. (Hit counters
  // are cumulative across clear_all, hence the base-relative wait.)
  const std::uint64_t base = support::failpoint_hits("kernel.level");
  ASSERT_TRUE(support::failpoint_set("kernel.level", "pause*1"));
  CancelSource src;
  core::Expected<core::SolveResult> result(SolveStatus::kOk, "");
  std::thread solver([&] { result = plan->solve(p.b, src.token()); });
  ASSERT_TRUE(support::failpoint_wait_hits("kernel.level", base + 1, 10000));
  src.cancel();
  support::failpoint_clear("kernel.level");
  solver.join();

  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status(), SolveStatus::kOverloaded);

  // The abort left the plan and its leased workspace clean: same plan,
  // same bits, immediately.
  const auto after = plan->solve(p.b);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.value().x, good);
}

TEST_F(CancelFixture, SyncfreeAbortsMidSolveAndTheWorkspaceIsReusable) {
  if (!support::failpoints_compiled()) GTEST_SKIP();
  // The chain gives the paused claimant a component every other worker
  // transitively depends on: the whole gang is provably in the kernel
  // (parked or spinning) when the flag goes up, and the spinners
  // themselves detect it.
  const Problem p = chain_problem();
  const auto plan =
      core::SolverPlan::analyze(p.l, opts("cpu-syncfree"));
  ASSERT_TRUE(plan.ok());
  const std::vector<value_t> good = plan->solve(p.b).value().x;

  const std::uint64_t base = support::failpoint_hits("kernel.task");
  ASSERT_TRUE(support::failpoint_set("kernel.task", "pause*1"));
  CancelSource src;
  core::Expected<core::SolveResult> result(SolveStatus::kOk, "");
  std::thread solver([&] { result = plan->solve(p.b, src.token()); });
  ASSERT_TRUE(support::failpoint_wait_hits("kernel.task", base + 1, 10000));
  src.cancel();
  support::failpoint_clear("kernel.task");
  solver.join();

  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status(), SolveStatus::kOverloaded);

  // The torn generation's delivery counters were rewound on abort; a
  // follow-up solve on the SAME workspace must neither hang nor drift.
  const auto after = plan->solve(p.b);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.value().x, good);
}

TEST_F(CancelFixture, DeadlineFiresMidExecutionWithTheKernelInFlight) {
  if (!support::failpoints_compiled()) GTEST_SKIP();
  const Problem p = layered_problem();
  core::SolveOptions o = opts("cpu-levelset");
  o.time_budget = 0.05;  // plenty to ENTER the kernel, then expire inside
  const auto plan = core::SolverPlan::analyze(p.l, o);
  ASSERT_TRUE(plan.ok());

  // Park the kernel past the entry check, hold it until the budget is
  // PROVABLY spent (deterministic: we wait out the deadline while the
  // kernel is frozen, so its next boundary check must see it expired).
  const std::uint64_t base = support::failpoint_hits("kernel.level");
  ASSERT_TRUE(support::failpoint_set("kernel.level", "pause*1"));
  core::Expected<core::SolveResult> result(SolveStatus::kOk, "");
  std::thread solver([&] { result = plan->solve(p.b); });
  ASSERT_TRUE(support::failpoint_wait_hits("kernel.level", base + 1, 10000));
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  support::failpoint_clear("kernel.level");
  solver.join();

  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status(), SolveStatus::kDeadlineExceeded);

  // Same plan, budget honored per solve: a fresh call gets a fresh
  // deadline. Every refusal must stay TYPED (a loaded machine can
  // legitimately exhaust a 50ms budget again -- that does not disprove
  // reusability), and the plan must complete once a budget is met.
  core::Expected<core::SolveResult> after(SolveStatus::kDeadlineExceeded, "");
  for (int attempt = 0; attempt < 50 && !after.ok(); ++attempt) {
    after = plan->solve(p.b);
    if (!after.ok()) {
      ASSERT_EQ(after.status(), SolveStatus::kDeadlineExceeded)
          << after.message();
    }
  }
  ASSERT_TRUE(after.ok()) << after.message();
}

TEST(CancelSolve, SimulatedBackendsCheckAtEntry) {
  const Problem p = layered_problem(400);
  const auto plan = core::SolverPlan::analyze(p.l, opts("mg-zerocopy", 1));
  ASSERT_TRUE(plan.ok());
  const auto refused = plan->solve(p.b, CancelToken::with_budget(0.0));
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status(), SolveStatus::kDeadlineExceeded);
  EXPECT_TRUE(plan->solve(p.b).ok());
}

TEST(CancelSolve, FlagOnlyCancellationReportsOverloaded) {
  // The service's abandon path: no deadline involved, so the typed error
  // is the shutting-down refusal, not a budget violation.
  const Problem p = layered_problem(400);
  const auto plan = core::SolverPlan::analyze(p.l, opts("serial", 1));
  ASSERT_TRUE(plan.ok());
  CancelSource src;
  src.cancel();
  const auto refused = plan->solve(p.b, src.token());
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status(), SolveStatus::kOverloaded);
  EXPECT_TRUE(plan->solve(p.b).ok());
}

}  // namespace
}  // namespace msptrsv
