// The multi-tenant solve service contract:
//
//  * every answered request is bit-for-bit what a direct plan.solve /
//    plan.solve_batch would have produced, no matter how the dispatcher
//    coalesced it into fused batches;
//  * a burst of k same-plan single-RHS submits executes as at most
//    ceil(k / max_coalesce) fused solve_batch dispatches (observable in
//    ServiceStats);
//  * past the admission bound, submits fail FAST with typed kOverloaded --
//    never block, never vanish;
//  * plans served through the service run their kernels on the shared
//    worker pool and own zero threads, idle or busy;
//  * the whole thing survives N client threads x M plans of mixed
//    single/batch traffic (run under the ASan/UBSan CI config like every
//    other test).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <thread>
#include <vector>

#include "core/msptrsv.hpp"

namespace msptrsv {
namespace {

using service::ServiceOptions;
using service::ServiceStatsSnapshot;
using service::SolveService;

sparse::CscMatrix service_matrix(std::uint64_t seed) {
  return sparse::gen_layered_dag(400, 14, 2200, 0.5, seed);
}

std::vector<value_t> rhs_for(const sparse::CscMatrix& l, std::uint64_t seed) {
  return sparse::gen_rhs_for_solution(l,
                                      sparse::gen_solution(l.rows, seed));
}

TEST(SolveService, SingleSubmitMatchesDirectSolveBitForBit) {
  const sparse::CscMatrix l = service_matrix(7);
  const std::vector<value_t> b = rhs_for(l, 1);

  SolveService svc;
  const auto plan = svc.plan_for(l, "cpu-syncfree");
  ASSERT_TRUE(plan.ok()) << plan.message();

  const std::vector<value_t> want = plan->solve(b).value().x;
  auto fut = svc.submit(*plan, b);
  SolveService::Reply r = fut.get();
  ASSERT_TRUE(r.ok()) << r.message();
  EXPECT_EQ(r.value().x, want);
  // Served plans gang on the shared pool: zero owned threads, ever.
  EXPECT_TRUE(plan->options().use_shared_pool);
  EXPECT_EQ(plan->owned_thread_count(), 0u);
  EXPECT_GE(plan->workspace_count(), 1u);
}

TEST(SolveService, BurstCoalescesIntoFusedBatches) {
  const sparse::CscMatrix l = service_matrix(11);
  constexpr int kBurst = 16;
  constexpr index_t kWidth = 8;

  ServiceOptions opt;
  opt.max_coalesce = kWidth;
  // Generous window: while it is open only the width trigger can ripen a
  // group, so a fast burst is GUARANTEED to fuse (the remainder, if any,
  // waits the window out).
  opt.coalesce_window = std::chrono::microseconds(300000);
  SolveService svc(opt);

  const auto plan = svc.plan_for(l, "cpu-levelset");
  ASSERT_TRUE(plan.ok()) << plan.message();

  std::vector<std::vector<value_t>> rhs;
  std::vector<std::vector<value_t>> want;
  for (int j = 0; j < kBurst; ++j) {
    rhs.push_back(rhs_for(l, 100 + static_cast<std::uint64_t>(j)));
    want.push_back(plan->solve(rhs.back()).value().x);
  }

  std::vector<std::future<SolveService::Reply>> futures;
  for (int j = 0; j < kBurst; ++j) {
    futures.push_back(svc.submit(*plan, rhs[static_cast<std::size_t>(j)]));
  }
  for (int j = 0; j < kBurst; ++j) {
    SolveService::Reply r = futures[static_cast<std::size_t>(j)].get();
    ASSERT_TRUE(r.ok()) << r.message();
    EXPECT_EQ(r.value().x, want[static_cast<std::size_t>(j)])
        << "coalesced result " << j << " diverged from direct plan.solve";
  }

  const ServiceStatsSnapshot s = svc.stats();
  EXPECT_EQ(s.submitted, static_cast<std::uint64_t>(kBurst));
  EXPECT_EQ(s.completed, static_cast<std::uint64_t>(kBurst));
  EXPECT_EQ(s.rejected, 0u);
  // The acceptance bound: k singles in <= ceil(k/width) fused dispatches.
  EXPECT_LE(s.batches,
            static_cast<std::uint64_t>((kBurst + kWidth - 1) / kWidth));
  EXPECT_GE(s.coalesced_rhs, static_cast<std::uint64_t>(kBurst));
  EXPECT_GT(s.mean_coalesce_width, 1.0);
  // Width-8 dispatches land in the 5-8 bucket.
  EXPECT_GT(s.coalesce_hist[3], 0u);
  EXPECT_GT(s.p50_latency_us, 0.0);
  EXPECT_GE(s.p99_latency_us, s.p50_latency_us);
  ASSERT_EQ(s.per_plan.size(), 1u);
  EXPECT_EQ(s.per_plan[0].plan, plan->state_id());
  EXPECT_EQ(s.per_plan[0].solves, static_cast<std::uint64_t>(kBurst));
}

TEST(SolveService, OverloadRejectsFastWithTypedBackpressure) {
  const sparse::CscMatrix l = service_matrix(13);

  ServiceOptions opt;
  opt.max_pending_rhs = 2;
  // Window long enough that the queue is still full when the third
  // submit probes the overload path, even on a preempted CI box.
  opt.coalesce_window = std::chrono::microseconds(400000);
  opt.max_coalesce = 32;
  SolveService svc(opt);

  const auto plan = svc.plan_for(l, "serial");
  ASSERT_TRUE(plan.ok()) << plan.message();
  const std::vector<value_t> b = rhs_for(l, 3);
  const std::vector<value_t> want = plan->solve(b).value().x;

  auto f1 = svc.submit(*plan, b);
  auto f2 = svc.submit(*plan, b);
  // Queue is at max_pending_rhs and the window keeps it unripe: the third
  // submit must come back kOverloaded IMMEDIATELY (the future is ready).
  auto f3 = svc.submit(*plan, b);
  ASSERT_EQ(f3.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  SolveService::Reply rejected = f3.get();
  EXPECT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status(), core::SolveStatus::kOverloaded);

  // Wrong-length batches reject on shape before touching the queue.
  auto bad = svc.submit_batch(*plan, b, 2);
  EXPECT_EQ(bad.get().status(), core::SolveStatus::kShapeMismatch);

  // A batch wider than the whole admission bound can never be served:
  // permanent kShapeMismatch, not "retry later" (which would loop a
  // well-behaved client forever).
  std::vector<value_t> wide;
  for (int j = 0; j < 3; ++j) wide.insert(wide.end(), b.begin(), b.end());
  auto never = svc.submit_batch(*plan, wide, 3);
  EXPECT_EQ(never.get().status(), core::SolveStatus::kShapeMismatch);

  // The admitted pair still completes correctly (coalesced or not).
  EXPECT_EQ(f1.get().value().x, want);
  EXPECT_EQ(f2.get().value().x, want);

  const ServiceStatsSnapshot s = svc.stats();
  EXPECT_EQ(s.rejected, 1u);
  EXPECT_EQ(s.completed, 2u);
  EXPECT_GE(s.peak_queue_depth, 2u);
}

TEST(SolveService, ContendedMixedTrafficStaysBitExact) {
  // N client threads x M plans, mixed single and batch submits, all
  // racing one service. Every reply must be bit-for-bit the direct
  // plan.solve / solve_batch result -- while ASan/TSan-style tooling
  // (the sanitize CI job) watches the queue, dispatcher, shared pool,
  // and stats for races.
  constexpr int kClients = 6;
  constexpr int kItersPerClient = 8;
  constexpr index_t kBatchRhs = 3;
  const char* kBackends[] = {"serial", "cpu-levelset", "cpu-syncfree"};

  ServiceOptions opt;
  opt.coalesce_window = std::chrono::microseconds(100);
  SolveService svc(opt);

  struct Tenant {
    core::SolverPlan plan;
    std::vector<value_t> b;
    std::vector<value_t> batch;
    std::vector<value_t> want_single;
    std::vector<value_t> want_batch;
  };
  std::vector<Tenant> tenants;
  for (std::size_t m = 0; m < 3; ++m) {
    const sparse::CscMatrix l = service_matrix(40 + m);
    auto plan = svc.plan_for(l, kBackends[m]);
    ASSERT_TRUE(plan.ok()) << plan.message();
    std::vector<value_t> b = rhs_for(l, 50 + m);
    std::vector<value_t> batch;
    for (index_t j = 0; j < kBatchRhs; ++j) {
      const std::vector<value_t> col = rhs_for(l, 60 + m * 7 + static_cast<std::size_t>(j));
      batch.insert(batch.end(), col.begin(), col.end());
    }
    Tenant t{*plan, b, batch, plan->solve(b).value().x,
             plan->solve_batch(batch, kBatchRhs).value().x};
    tenants.push_back(std::move(t));
  }

  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int it = 0; it < kItersPerClient; ++it) {
        Tenant& t = tenants[static_cast<std::size_t>((c + it) % 3)];
        if ((c + it) % 2 == 0) {
          SolveService::Reply r = svc.submit(t.plan, t.b).get();
          if (!r.ok()) {
            failures.fetch_add(1);
          } else if (r.value().x != t.want_single) {
            mismatches.fetch_add(1);
          }
        } else {
          SolveService::Reply r =
              svc.submit_batch(t.plan, t.batch, kBatchRhs).get();
          if (!r.ok()) {
            failures.fetch_add(1);
          } else if (r.value().x != t.want_batch) {
            mismatches.fetch_add(1);
          }
        }
      }
    });
  }
  for (std::thread& th : clients) th.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0)
      << "service replies diverged from direct plan solves under contention";

  const ServiceStatsSnapshot s = svc.stats();
  const std::uint64_t total_rhs = static_cast<std::uint64_t>(kClients) *
                                  kItersPerClient / 2 *
                                  (1 + static_cast<std::uint64_t>(kBatchRhs));
  EXPECT_EQ(s.submitted, total_rhs);
  EXPECT_EQ(s.completed, total_rhs);
  EXPECT_EQ(s.failed, 0u);
  EXPECT_EQ(s.per_plan.size(), 3u);
  // No tenant owns kernel threads: everything ganged on the shared pool.
  for (const Tenant& t : tenants) {
    EXPECT_EQ(t.plan.owned_thread_count(), 0u);
  }
}

TEST(SolveService, PlanForIsAnalyzeOnFirstUse) {
  const sparse::CscMatrix l = service_matrix(21);
  SolveService svc;

  const auto first = svc.plan_for(l, "cpu-syncfree");
  ASSERT_TRUE(first.ok());
  const auto second = svc.plan_for(l, "cpu-syncfree");
  ASSERT_TRUE(second.ok());
  // Same symbolic state: submits through either copy coalesce together.
  EXPECT_EQ(first->state_id(), second->state_id());
  const core::PlanCache::Stats cs = svc.plan_cache().stats();
  EXPECT_EQ(cs.misses, 1u);
  EXPECT_EQ(cs.hits, 1u);

  // Unknown keys surface the registry's typed error.
  EXPECT_EQ(svc.plan_for(l, "no-such-backend").status(),
            core::SolveStatus::kUnknownBackend);
}

TEST(SolveService, PresetConstructionServesSimulatedBackends) {
  const sparse::CscMatrix l = service_matrix(23);
  SolveService svc;
  const auto plan = svc.plan_for_preset(l, "dgx1x8");
  ASSERT_TRUE(plan.ok()) << plan.message();
  EXPECT_EQ(plan->options().machine.num_gpus(), 8);
  EXPECT_TRUE(plan->options().use_shared_pool);

  const std::vector<value_t> b = rhs_for(l, 5);
  const std::vector<value_t> want = plan->solve(b).value().x;
  EXPECT_EQ(svc.submit(*plan, b).get().value().x, want);
}

TEST(SolveService, DestructorDrainsEverythingAdmitted) {
  const sparse::CscMatrix l = service_matrix(29);
  std::vector<std::future<SolveService::Reply>> futures;
  const std::vector<value_t> b = rhs_for(l, 9);
  std::vector<value_t> want;
  {
    ServiceOptions opt;
    opt.coalesce_window = std::chrono::microseconds(50000);
    SolveService svc(opt);
    const auto plan = svc.plan_for(l, "cpu-levelset");
    ASSERT_TRUE(plan.ok());
    want = plan->solve(b).value().x;
    for (int j = 0; j < 6; ++j) futures.push_back(svc.submit(*plan, b));
    // Service dies here with requests possibly still queued.
  }
  for (auto& f : futures) {
    SolveService::Reply r = f.get();
    ASSERT_TRUE(r.ok()) << r.message();
    EXPECT_EQ(r.value().x, want);
  }
}

// ---- priorities, deadlines, packing ---------------------------------------

TEST(SolveServiceScheduling, HighPriorityDispatchesBeforeBackground) {
  // A background group waits background_window_scale x window for company;
  // a high-priority group ripens immediately. Submit background FIRST,
  // then high: high must complete while background is still queued.
  const sparse::CscMatrix la = service_matrix(61);
  const sparse::CscMatrix lb = service_matrix(62);

  ServiceOptions opt;
  opt.coalesce_window = std::chrono::milliseconds(250);
  opt.background_window_scale = 4.0;  // background ripens after 1 s
  std::vector<std::future<SolveService::Reply>> bg;
  std::vector<value_t> bg_want, hi_want;
  {
    SolveService svc(opt);
    const auto plan_bg = svc.plan_for(la, "cpu-syncfree");
    const auto plan_hi = svc.plan_for(lb, "cpu-syncfree");
    ASSERT_TRUE(plan_bg.ok());
    ASSERT_TRUE(plan_hi.ok());
    const std::vector<value_t> b_bg = rhs_for(la, 1);
    const std::vector<value_t> b_hi = rhs_for(lb, 2);
    bg_want = plan_bg->solve(b_bg).value().x;
    hi_want = plan_hi->solve(b_hi).value().x;

    bg.push_back(svc.submit(*plan_bg, b_bg,
                            {.priority = service::Priority::kBackground}));
    auto hi = svc.submit(*plan_hi, b_hi,
                         {.priority = service::Priority::kHigh});
    SolveService::Reply r = hi.get();
    ASSERT_TRUE(r.ok()) << r.message();
    EXPECT_EQ(r.value().x, hi_want);
    // The background request is still waiting out its (much longer)
    // window when the high one has already been answered.
    EXPECT_NE(bg.front().wait_for(std::chrono::seconds(0)),
              std::future_status::ready)
        << "background ripened before its scaled window -- priority "
           "scheduling is not separating the classes";

    const ServiceStatsSnapshot s = svc.stats();
    const auto& hi_cls =
        s.per_class[static_cast<std::size_t>(service::Priority::kHigh)];
    const auto& bg_cls =
        s.per_class[static_cast<std::size_t>(service::Priority::kBackground)];
    EXPECT_EQ(hi_cls.submitted, 1u);
    EXPECT_EQ(hi_cls.completed, 1u);
    EXPECT_GT(hi_cls.p50_latency_us, 0.0);
    EXPECT_EQ(bg_cls.submitted, 1u);
    EXPECT_EQ(bg_cls.completed, 0u);
    EXPECT_EQ(bg_cls.queue_depth, 1u);
    // Destruction switches the queue to drain mode: the background
    // request is answered without waiting out its window.
  }
  SolveService::Reply r = bg.front().get();
  ASSERT_TRUE(r.ok()) << r.message();
  EXPECT_EQ(r.value().x, bg_want);
}

TEST(SolveServiceScheduling, WeightedAgingLetsBackgroundWinEventually) {
  // Direct queue test of the weighted-wait rule: a fresh high group beats
  // a fresh background group, but a background group that has waited much
  // longer than the weight ratio outranks a fresh high group -- bounded
  // delay in BOTH directions, the starvation-freedom argument.
  const sparse::CscMatrix l = service_matrix(63);
  const auto plan_a = core::registry::analyze_cached(l, "serial");
  const sparse::CscMatrix l2 = service_matrix(64);
  const auto plan_b = core::registry::analyze_cached(l2, "serial");
  ASSERT_TRUE(plan_a.ok());
  ASSERT_TRUE(plan_b.ok());
  const std::vector<value_t> rhs_a = rhs_for(l, 1);
  const std::vector<value_t> rhs_b = rhs_for(l2, 2);

  using service::PoppedDispatch;
  using service::QueueOptions;
  using service::RequestQueue;
  using service::SolveRequest;
  const auto request = [&](const core::SolverPlan& plan,
                           const std::vector<value_t>& rhs,
                           service::Priority p,
                           std::chrono::milliseconds age =
                               std::chrono::milliseconds(0)) {
    SolveRequest r{plan,
                   rhs,
                   1,
                   p,
                   std::chrono::steady_clock::time_point::max(),
                   {},
                   std::chrono::steady_clock::now() - age};
    return r;
  };

  QueueOptions qo;
  qo.window = std::chrono::microseconds(0);  // everything ripens instantly
  qo.pack_max_groups = 1;                    // isolate the selection rule
  {
    RequestQueue q(qo);
    // Aged background first, fresh high second. The age is BACKDATED into
    // the submit timestamp instead of slept through: the selection rule
    // reads submitted-at, so the test is instant and immune to scheduler
    // jitter inflating (or deflating) a real sleep.
    q.push(request(*plan_a, rhs_a, service::Priority::kBackground,
                   std::chrono::milliseconds(60)));
    q.push(request(*plan_b, rhs_b, service::Priority::kHigh));
    // 60 ms * weight 1 far exceeds ~0 ms * weight 16: background wins.
    PoppedDispatch d = q.pop_dispatch();
    ASSERT_EQ(d.groups.size(), 1u);
    EXPECT_EQ(d.groups[0].front().priority, service::Priority::kBackground);
    q.shutdown();
  }
  {
    RequestQueue q(qo);
    // Both fresh: high wins on weight.
    q.push(request(*plan_a, rhs_a, service::Priority::kBackground));
    q.push(request(*plan_b, rhs_b, service::Priority::kHigh));
    PoppedDispatch d = q.pop_dispatch();
    ASSERT_EQ(d.groups.size(), 1u);
    EXPECT_EQ(d.groups[0].front().priority, service::Priority::kHigh);
    EXPECT_EQ(q.depth_rhs(service::Priority::kBackground), 1u);
    EXPECT_EQ(q.depth_rhs(service::Priority::kHigh), 0u);
    q.shutdown();
  }
}

TEST(SolveServiceScheduling, HighPriorityStreamSurvivesBackgroundFlood) {
  // Starvation-freedom under load: background clients flood the service
  // while one high-priority client streams closed-loop. Every high
  // request must complete, and the high class's tail latency must stay
  // far below the background class's (whose window wait is by design).
  const sparse::CscMatrix l_hi = service_matrix(65);
  const sparse::CscMatrix l_bg = service_matrix(66);

  ServiceOptions opt;
  opt.coalesce_window = std::chrono::milliseconds(5);
  opt.background_window_scale = 4.0;  // background floor: 20 ms of wait
  opt.max_pending_rhs = 256;
  SolveService svc(opt);
  const auto plan_hi = svc.plan_for(l_hi, "cpu-syncfree");
  const auto plan_bg = svc.plan_for(l_bg, "cpu-syncfree");
  ASSERT_TRUE(plan_hi.ok());
  ASSERT_TRUE(plan_bg.ok());
  const std::vector<value_t> b_hi = rhs_for(l_hi, 3);
  const std::vector<value_t> b_bg = rhs_for(l_bg, 4);
  const std::vector<value_t> want_hi = plan_hi->solve(b_hi).value().x;

  std::atomic<bool> stop{false};
  std::vector<std::thread> flood;
  for (int c = 0; c < 3; ++c) {
    flood.emplace_back([&] {
      while (!stop.load()) {
        auto f = svc.submit(*plan_bg, b_bg,
                            {.priority = service::Priority::kBackground});
        f.wait();  // closed loop, but the class keeps the queue primed
      }
    });
  }

  constexpr int kHighRequests = 40;
  int wrong = 0;
  for (int i = 0; i < kHighRequests; ++i) {
    SolveService::Reply r =
        svc.submit(*plan_hi, b_hi, {.priority = service::Priority::kHigh})
            .get();
    if (!r.ok() || r.value().x != want_hi) ++wrong;
  }
  stop.store(true);
  for (std::thread& th : flood) th.join();
  svc.drain();

  EXPECT_EQ(wrong, 0);
  const ServiceStatsSnapshot s = svc.stats();
  const auto& hi =
      s.per_class[static_cast<std::size_t>(service::Priority::kHigh)];
  const auto& bg =
      s.per_class[static_cast<std::size_t>(service::Priority::kBackground)];
  EXPECT_EQ(hi.completed, static_cast<std::uint64_t>(kHighRequests));
  EXPECT_GT(bg.completed, 0u);
  // The background class pays its scaled window by design; the high class
  // must not be dragged up to it (generous factor for noisy CI boxes).
  EXPECT_LT(hi.p99_latency_us, bg.p99_latency_us)
      << "high-priority p99 " << hi.p99_latency_us
      << " us did not stay below background p99 " << bg.p99_latency_us
      << " us under a background flood";
}

TEST(SolveServiceScheduling, QueuePacksRipeSmallGroupsIntoOneDispatch) {
  // Deterministic cross-plan packing at the queue level: several narrow
  // groups of small plans, drained -- one pop must carry them all as
  // sibling sub-batches of a single dispatch.
  using service::PoppedDispatch;
  using service::QueueOptions;
  using service::RequestQueue;
  using service::SolveRequest;

  constexpr int kTenants = 5;
  std::vector<core::SolverPlan> plans;
  std::vector<std::vector<value_t>> rhs;
  for (int t = 0; t < kTenants; ++t) {
    const sparse::CscMatrix l = service_matrix(70 + static_cast<std::uint64_t>(t));
    auto plan = core::registry::analyze_cached(l, "serial");
    ASSERT_TRUE(plan.ok());
    rhs.push_back(rhs_for(l, static_cast<std::uint64_t>(t)));
    plans.push_back(*plan);
  }

  QueueOptions qo;
  qo.window = std::chrono::seconds(60);  // nothing ripens naturally
  qo.pack_max_groups = 8;
  qo.pack_narrow_width = 4;
  qo.pack_small_rows = 4096;  // the 400-row test plans qualify
  RequestQueue q(qo);
  for (int t = 0; t < kTenants; ++t) {
    SolveRequest r{plans[static_cast<std::size_t>(t)],
                   rhs[static_cast<std::size_t>(t)],
                   1,
                   service::Priority::kNormal,
                   std::chrono::steady_clock::time_point::max(),
                   {},
                   std::chrono::steady_clock::now()};
    ASSERT_TRUE(q.push(std::move(r)));
  }
  EXPECT_EQ(q.depth_rhs(), static_cast<std::size_t>(kTenants));
  q.shutdown();  // drain mode: every group is ripe NOW
  PoppedDispatch d = q.pop_dispatch();
  ASSERT_EQ(d.groups.size(), static_cast<std::size_t>(kTenants))
      << "drain pop should pack every ripe small tenant into one dispatch";
  for (const auto& g : d.groups) {
    EXPECT_EQ(g.size(), 1u);
  }
  EXPECT_EQ(q.depth_rhs(), 0u);
  EXPECT_TRUE(q.pop_dispatch().groups.empty());  // drained exit signal
}

TEST(SolveServiceScheduling, PackedDispatchAnswersBitForBit) {
  // Service-level packed execution: requests against several small plans
  // queued behind a never-ripening window are drain-packed by the
  // destructor into sibling sub-batches on one claimed gang. Every reply
  // must be bit-for-bit the direct plan.solve answer.
  constexpr int kTenants = 6;
  std::vector<sparse::CscMatrix> factors;
  std::vector<std::vector<value_t>> rhs, want;
  std::vector<std::future<SolveService::Reply>> futures;
  {
    ServiceOptions opt;
    opt.coalesce_window = std::chrono::seconds(60);
    opt.pack_max_groups = 8;
    opt.pack_narrow_width = 4;
    opt.pack_small_rows = 4096;
    SolveService svc(opt);
    for (int t = 0; t < kTenants; ++t) {
      factors.push_back(service_matrix(80 + static_cast<std::uint64_t>(t)));
      const auto plan = svc.plan_for(factors.back(), "cpu-syncfree");
      ASSERT_TRUE(plan.ok());
      rhs.push_back(rhs_for(factors.back(), static_cast<std::uint64_t>(t)));
      want.push_back(plan->solve(rhs.back()).value().x);
      futures.push_back(svc.submit(*plan, rhs.back()));
    }
    // Destructor: drain mode packs all six tenants into ~one dispatch.
  }
  for (int t = 0; t < kTenants; ++t) {
    SolveService::Reply r = futures[static_cast<std::size_t>(t)].get();
    ASSERT_TRUE(r.ok()) << r.message();
    EXPECT_EQ(r.value().x, want[static_cast<std::size_t>(t)])
        << "packed sibling " << t << " diverged from direct plan.solve";
  }
}

TEST(SolveServiceScheduling, PackedDispatchShowsUpInStats) {
  // Live (non-drain) packing: small tenants submitted back-to-back under
  // one window ripen together and at least one pool dispatch must carry
  // several plans. (Timing-lenient: only >= 1 packed dispatch is
  // asserted; bit-exactness is covered by the drain test above.)
  constexpr int kTenants = 6;
  ServiceOptions opt;
  opt.coalesce_window = std::chrono::milliseconds(100);
  opt.pack_max_groups = 8;
  SolveService svc(opt);

  std::vector<sparse::CscMatrix> factors;
  std::vector<core::SolverPlan> plans;
  std::vector<std::vector<value_t>> rhs;
  for (int t = 0; t < kTenants; ++t) {
    factors.push_back(service_matrix(90 + static_cast<std::uint64_t>(t)));
    const auto plan = svc.plan_for(factors.back(), "cpu-syncfree");
    ASSERT_TRUE(plan.ok());
    plans.push_back(*plan);
    rhs.push_back(rhs_for(factors.back(), static_cast<std::uint64_t>(t)));
  }
  std::vector<std::future<SolveService::Reply>> futures;
  for (int t = 0; t < kTenants; ++t) {
    futures.push_back(svc.submit(plans[static_cast<std::size_t>(t)],
                                 rhs[static_cast<std::size_t>(t)]));
  }
  for (auto& f : futures) {
    SolveService::Reply r = f.get();
    ASSERT_TRUE(r.ok()) << r.message();
  }
  const ServiceStatsSnapshot s = svc.stats();
  EXPECT_GE(s.packed_dispatches, 1u)
      << "six simultaneous tiny tenants produced no packed dispatch";
  EXPECT_GE(s.packed_plans, 2u);
  std::uint64_t packed_hist_total = 0;
  for (std::uint64_t b : s.packed_hist) packed_hist_total += b;
  EXPECT_GE(packed_hist_total, 1u);
}

TEST(SolveServiceScheduling, DeadlineShedsWhenExecutionStartsLate) {
  // A request whose start-by deadline passes while its dispatch waits
  // behind a busy pool is shed with typed kDeadlineExceeded -- not solved
  // late, not dropped silently. Deterministic: the service's dispatch
  // pool has ONE worker, occupied by a sleeper when the request arrives.
  const sparse::CscMatrix l = service_matrix(95);
  core::SharedWorkerPool pool(1);
  ServiceOptions opt;
  opt.coalesce_window = std::chrono::microseconds(0);
  opt.pool = &pool;
  {
    SolveService svc(opt);
    const auto plan = svc.plan_for(l, "serial");
    ASSERT_TRUE(plan.ok());
    const std::vector<value_t> b = rhs_for(l, 6);
    const std::vector<value_t> want = plan->solve(b).value().x;

    // Occupy the only dispatch worker -- and WAIT until it is actually
    // running: an unstarted blocker still in the queue would let the
    // (urgent) dispatch overtake it and execute in time. The blocker is
    // GATED, not slept: it holds the worker until this thread releases it
    // below, which happens only once the deadline has provably passed --
    // so the test cannot flake in either direction (a fixed sleep both
    // wastes wall-clock and loses the race on a stalled machine).
    std::atomic<bool> blocking{false};
    std::atomic<bool> release{false};
    pool.submit([&blocking, &release] {
      blocking.store(true);
      while (!release.load()) std::this_thread::yield();
    });
    while (!blocking.load()) std::this_thread::yield();
    auto doomed = svc.submit(
        *plan, b,
        {.priority = service::Priority::kHigh,
         .deadline = std::chrono::milliseconds(20)});
    // The service stamped the deadline no earlier than our pre-submit
    // clock and no later than now; sleeping until now+deadline+margin
    // therefore provably passes it before the worker frees up.
    std::this_thread::sleep_until(std::chrono::steady_clock::now() +
                                  std::chrono::milliseconds(25));
    release.store(true);
    SolveService::Reply r = doomed.get();
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.status(), core::SolveStatus::kDeadlineExceeded);

    // A generous deadline on a free pool completes normally.
    auto fine = svc.submit(*plan, b,
                           {.deadline = std::chrono::seconds(30)});
    SolveService::Reply ok = fine.get();
    ASSERT_TRUE(ok.ok()) << ok.message();
    EXPECT_EQ(ok.value().x, want);

    const ServiceStatsSnapshot s = svc.stats();
    EXPECT_EQ(s.shed, 1u);
    EXPECT_EQ(
        s.per_class[static_cast<std::size_t>(service::Priority::kHigh)].shed,
        1u);
    EXPECT_EQ(s.completed, 1u);
  }  // service destroyed before `pool` (ServiceOptions::pool contract)
}

TEST(SolveServiceScheduling, ShardedDispatchersStayBitExact) {
  // Multiple dispatcher shards: plans hash onto independent queues, all
  // replies stay bit-for-bit, and per-plan coalescing still works (same
  // plan always lands on the same shard).
  constexpr int kClients = 4;
  constexpr int kIters = 10;
  ServiceOptions opt;
  opt.dispatch_shards = 4;
  opt.coalesce_window = std::chrono::microseconds(100);
  SolveService svc(opt);
  EXPECT_EQ(svc.shard_count(), 4);

  std::vector<sparse::CscMatrix> factors;
  std::vector<core::SolverPlan> plans;
  std::vector<std::vector<value_t>> rhs, want;
  for (int t = 0; t < 5; ++t) {
    factors.push_back(service_matrix(100 + static_cast<std::uint64_t>(t)));
    const auto plan = svc.plan_for(factors.back(), "cpu-levelset");
    ASSERT_TRUE(plan.ok());
    plans.push_back(*plan);
    rhs.push_back(rhs_for(factors.back(), static_cast<std::uint64_t>(t)));
    want.push_back(plan->solve(rhs.back()).value().x);
  }

  std::atomic<int> bad{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kIters; ++i) {
        const std::size_t t = static_cast<std::size_t>((c + i) % 5);
        SolveService::Reply r = svc.submit(plans[t], rhs[t]).get();
        if (!r.ok() || r.value().x != want[t]) bad.fetch_add(1);
      }
    });
  }
  for (std::thread& th : clients) th.join();
  EXPECT_EQ(bad.load(), 0);
  const ServiceStatsSnapshot s = svc.stats();
  EXPECT_EQ(s.completed, static_cast<std::uint64_t>(kClients * kIters));
}

TEST(ServiceStatsTest, LatencyRingSizeIsAConstructorParameter) {
  // The quantile window is configurable (and clamped to a sane floor):
  // the documented fix for the fixed-4096-sample limitation.
  service::ServiceStats tiny(1);  // clamped up to 16
  EXPECT_EQ(tiny.latency_ring_capacity(), 16u);
  service::ServiceStats stats(64);
  EXPECT_EQ(stats.latency_ring_capacity(), 64u);
  // Overflow the ring: quantiles reflect only the most recent window.
  for (int i = 0; i < 1000; ++i) {
    stats.on_complete(nullptr, 10, 1, true, service::Priority::kNormal,
                      100.0);
  }
  const ServiceStatsSnapshot s = stats.snapshot();
  EXPECT_EQ(s.completed, 1000u);
  EXPECT_DOUBLE_EQ(s.p50_latency_us, 100.0);
  EXPECT_DOUBLE_EQ(
      s.per_class[static_cast<std::size_t>(service::Priority::kNormal)]
          .p50_latency_us,
      100.0);
}

// ---- shared worker pool ----------------------------------------------------

TEST(SharedWorkerPool, GangReservationCapsConcurrentClaims) {
  // Two overlapping gangs on an 8-worker pool: the second claim is capped
  // at its equal share (8 / 2 active = 4 parties) even though it asked for
  // everything. Claimable-now semantics are untouched -- nothing blocks.
  core::SharedWorkerPool pool(8);
  ASSERT_TRUE(pool.gang_reservation());

  std::atomic<bool> a_inside{false};
  std::atomic<bool> b_done{false};
  std::atomic<int> b_parties{0};
  std::thread holder([&] {
    pool.run_gang(
        7, [](int) {},
        [&](int tid, int) {
          if (tid == 0) {
            a_inside.store(true);
            while (!b_done.load()) std::this_thread::yield();
          }
        });
  });
  while (!a_inside.load()) std::this_thread::yield();
  // Gang A is active: B's ask of 7 extras is capped to 3 (4 parties).
  const int parties = pool.run_gang(
      7, [](int) {}, [&](int, int) { b_parties.fetch_add(1); });
  b_done.store(true);
  holder.join();
  EXPECT_LE(parties, 4);
  EXPECT_GE(parties, 1);
  EXPECT_EQ(b_parties.load(), parties);
  EXPECT_GE(pool.stats().gang_capped, 1u);
  EXPECT_EQ(pool.active_gangs(), 0);

  // The toggle restores greedy claims for A/B comparisons.
  pool.set_gang_reservation(false);
  EXPECT_FALSE(pool.gang_reservation());
  const int solo = pool.run_gang(7, [](int) {}, [](int, int) {});
  EXPECT_GE(solo, 1);
}


TEST(SharedWorkerPool, TasksRunAndStealAcrossDeques) {
  core::SharedWorkerPool pool(4);
  constexpr int kTasks = 64;
  std::atomic<int> done{0};
  for (int i = 0; i < kTasks; ++i) {
    pool.submit([&done] { done.fetch_add(1); });
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (pool.stats().tasks_run < static_cast<std::uint64_t>(kTasks) &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  EXPECT_EQ(done.load(), kTasks);
  EXPECT_EQ(pool.stats().tasks_run, static_cast<std::uint64_t>(kTasks));
}

TEST(SharedWorkerPool, GangsShrinkInsteadOfDeadlocking) {
  core::SharedWorkerPool pool(2);
  // Ask for far more members than exist: the gang must run anyway with
  // whatever was idle (possibly just the caller) and report the width.
  std::atomic<int> ran{0};
  const int parties = pool.run_gang(
      16, [](int) {}, [&](int tid, int p) {
        EXPECT_LT(tid, p);
        ran.fetch_add(1);
      });
  EXPECT_GE(parties, 1);
  EXPECT_LE(parties, 3);
  EXPECT_EQ(ran.load(), parties);
  EXPECT_GE(pool.stats().gangs, 1u);

  // Concurrent gang openers from foreign threads never deadlock even
  // when they collectively want every worker several times over.
  std::vector<std::thread> openers;
  std::atomic<int> total{0};
  for (int i = 0; i < 4; ++i) {
    openers.emplace_back([&] {
      for (int it = 0; it < 20; ++it) {
        pool.run_gang(
            8, [](int) {}, [&](int, int) { total.fetch_add(1); });
      }
    });
  }
  for (std::thread& th : openers) th.join();
  EXPECT_GE(total.load(), 4 * 20);  // at least the callers themselves ran
}

TEST(SharedWorkerPool, SharedPlansHoldZeroOwnedThreads) {
  const sparse::CscMatrix l = service_matrix(31);
  core::SolveOptions opt =
      core::registry::service_options("cpu-syncfree").value();
  const auto plan = core::SolverPlan::analyze(l, opt);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->owned_thread_count(), 0u);
  const std::vector<value_t> b = rhs_for(l, 2);

  // Same bits as an owned-pool plan, before and after solving.
  core::SolveOptions owned = core::registry::options_for("cpu-syncfree").value();
  const auto baseline = core::SolverPlan::analyze(l, owned);
  ASSERT_TRUE(baseline.ok());
  EXPECT_EQ(plan->solve(b).value().x, baseline->solve(b).value().x);

  EXPECT_GE(plan->workspace_count(), 1u);
  EXPECT_EQ(plan->owned_thread_count(), 0u)
      << "a shared-pool plan must never spawn per-workspace threads";
  // The owned-pool baseline really does own threads after its first
  // solve (unless the machine reports a single hardware thread).
  if (core::resolve_cpu_threads(0) > 1) {
    EXPECT_GT(baseline->owned_thread_count(), 0u);
  }
}

TEST(SharedWorkerPool, OwnedPoolsAreLazyUntilFirstSolve) {
  const sparse::CscMatrix l = service_matrix(37);
  core::SolveOptions opt = core::registry::options_for("cpu-levelset").value();
  const auto plan = core::SolverPlan::analyze(l, opt);
  ASSERT_TRUE(plan.ok());
  // Analyzed-but-never-solved plans hold zero threads (the idle-tenant
  // guarantee: a service caching hundreds of plans costs no threads).
  EXPECT_EQ(plan->owned_thread_count(), 0u);
  const std::vector<value_t> b = rhs_for(l, 4);
  ASSERT_TRUE(plan->solve(b).ok());
  if (core::resolve_cpu_threads(0) > 1) {
    EXPECT_GT(plan->owned_thread_count(), 0u);
  }
}

}  // namespace
}  // namespace msptrsv
