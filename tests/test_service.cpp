// The multi-tenant solve service contract:
//
//  * every answered request is bit-for-bit what a direct plan.solve /
//    plan.solve_batch would have produced, no matter how the dispatcher
//    coalesced it into fused batches;
//  * a burst of k same-plan single-RHS submits executes as at most
//    ceil(k / max_coalesce) fused solve_batch dispatches (observable in
//    ServiceStats);
//  * past the admission bound, submits fail FAST with typed kOverloaded --
//    never block, never vanish;
//  * plans served through the service run their kernels on the shared
//    worker pool and own zero threads, idle or busy;
//  * the whole thing survives N client threads x M plans of mixed
//    single/batch traffic (run under the ASan/UBSan CI config like every
//    other test).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <thread>
#include <vector>

#include "core/msptrsv.hpp"

namespace msptrsv {
namespace {

using service::ServiceOptions;
using service::ServiceStatsSnapshot;
using service::SolveService;

sparse::CscMatrix service_matrix(std::uint64_t seed) {
  return sparse::gen_layered_dag(400, 14, 2200, 0.5, seed);
}

std::vector<value_t> rhs_for(const sparse::CscMatrix& l, std::uint64_t seed) {
  return sparse::gen_rhs_for_solution(l,
                                      sparse::gen_solution(l.rows, seed));
}

TEST(SolveService, SingleSubmitMatchesDirectSolveBitForBit) {
  const sparse::CscMatrix l = service_matrix(7);
  const std::vector<value_t> b = rhs_for(l, 1);

  SolveService svc;
  const auto plan = svc.plan_for(l, "cpu-syncfree");
  ASSERT_TRUE(plan.ok()) << plan.message();

  const std::vector<value_t> want = plan->solve(b).value().x;
  auto fut = svc.submit(*plan, b);
  SolveService::Reply r = fut.get();
  ASSERT_TRUE(r.ok()) << r.message();
  EXPECT_EQ(r.value().x, want);
  // Served plans gang on the shared pool: zero owned threads, ever.
  EXPECT_TRUE(plan->options().use_shared_pool);
  EXPECT_EQ(plan->owned_thread_count(), 0u);
  EXPECT_GE(plan->workspace_count(), 1u);
}

TEST(SolveService, BurstCoalescesIntoFusedBatches) {
  const sparse::CscMatrix l = service_matrix(11);
  constexpr int kBurst = 16;
  constexpr index_t kWidth = 8;

  ServiceOptions opt;
  opt.max_coalesce = kWidth;
  // Generous window: while it is open only the width trigger can ripen a
  // group, so a fast burst is GUARANTEED to fuse (the remainder, if any,
  // waits the window out).
  opt.coalesce_window = std::chrono::microseconds(300000);
  SolveService svc(opt);

  const auto plan = svc.plan_for(l, "cpu-levelset");
  ASSERT_TRUE(plan.ok()) << plan.message();

  std::vector<std::vector<value_t>> rhs;
  std::vector<std::vector<value_t>> want;
  for (int j = 0; j < kBurst; ++j) {
    rhs.push_back(rhs_for(l, 100 + static_cast<std::uint64_t>(j)));
    want.push_back(plan->solve(rhs.back()).value().x);
  }

  std::vector<std::future<SolveService::Reply>> futures;
  for (int j = 0; j < kBurst; ++j) {
    futures.push_back(svc.submit(*plan, rhs[static_cast<std::size_t>(j)]));
  }
  for (int j = 0; j < kBurst; ++j) {
    SolveService::Reply r = futures[static_cast<std::size_t>(j)].get();
    ASSERT_TRUE(r.ok()) << r.message();
    EXPECT_EQ(r.value().x, want[static_cast<std::size_t>(j)])
        << "coalesced result " << j << " diverged from direct plan.solve";
  }

  const ServiceStatsSnapshot s = svc.stats();
  EXPECT_EQ(s.submitted, static_cast<std::uint64_t>(kBurst));
  EXPECT_EQ(s.completed, static_cast<std::uint64_t>(kBurst));
  EXPECT_EQ(s.rejected, 0u);
  // The acceptance bound: k singles in <= ceil(k/width) fused dispatches.
  EXPECT_LE(s.batches,
            static_cast<std::uint64_t>((kBurst + kWidth - 1) / kWidth));
  EXPECT_GE(s.coalesced_rhs, static_cast<std::uint64_t>(kBurst));
  EXPECT_GT(s.mean_coalesce_width, 1.0);
  // Width-8 dispatches land in the 5-8 bucket.
  EXPECT_GT(s.coalesce_hist[3], 0u);
  EXPECT_GT(s.p50_latency_us, 0.0);
  EXPECT_GE(s.p99_latency_us, s.p50_latency_us);
  ASSERT_EQ(s.per_plan.size(), 1u);
  EXPECT_EQ(s.per_plan[0].plan, plan->state_id());
  EXPECT_EQ(s.per_plan[0].solves, static_cast<std::uint64_t>(kBurst));
}

TEST(SolveService, OverloadRejectsFastWithTypedBackpressure) {
  const sparse::CscMatrix l = service_matrix(13);

  ServiceOptions opt;
  opt.max_pending_rhs = 2;
  // Window long enough that the queue is still full when the third
  // submit probes the overload path, even on a preempted CI box.
  opt.coalesce_window = std::chrono::microseconds(400000);
  opt.max_coalesce = 32;
  SolveService svc(opt);

  const auto plan = svc.plan_for(l, "serial");
  ASSERT_TRUE(plan.ok()) << plan.message();
  const std::vector<value_t> b = rhs_for(l, 3);
  const std::vector<value_t> want = plan->solve(b).value().x;

  auto f1 = svc.submit(*plan, b);
  auto f2 = svc.submit(*plan, b);
  // Queue is at max_pending_rhs and the window keeps it unripe: the third
  // submit must come back kOverloaded IMMEDIATELY (the future is ready).
  auto f3 = svc.submit(*plan, b);
  ASSERT_EQ(f3.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  SolveService::Reply rejected = f3.get();
  EXPECT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status(), core::SolveStatus::kOverloaded);

  // Wrong-length batches reject on shape before touching the queue.
  auto bad = svc.submit_batch(*plan, b, 2);
  EXPECT_EQ(bad.get().status(), core::SolveStatus::kShapeMismatch);

  // A batch wider than the whole admission bound can never be served:
  // permanent kShapeMismatch, not "retry later" (which would loop a
  // well-behaved client forever).
  std::vector<value_t> wide;
  for (int j = 0; j < 3; ++j) wide.insert(wide.end(), b.begin(), b.end());
  auto never = svc.submit_batch(*plan, wide, 3);
  EXPECT_EQ(never.get().status(), core::SolveStatus::kShapeMismatch);

  // The admitted pair still completes correctly (coalesced or not).
  EXPECT_EQ(f1.get().value().x, want);
  EXPECT_EQ(f2.get().value().x, want);

  const ServiceStatsSnapshot s = svc.stats();
  EXPECT_EQ(s.rejected, 1u);
  EXPECT_EQ(s.completed, 2u);
  EXPECT_GE(s.peak_queue_depth, 2u);
}

TEST(SolveService, ContendedMixedTrafficStaysBitExact) {
  // N client threads x M plans, mixed single and batch submits, all
  // racing one service. Every reply must be bit-for-bit the direct
  // plan.solve / solve_batch result -- while ASan/TSan-style tooling
  // (the sanitize CI job) watches the queue, dispatcher, shared pool,
  // and stats for races.
  constexpr int kClients = 6;
  constexpr int kItersPerClient = 8;
  constexpr index_t kBatchRhs = 3;
  const char* kBackends[] = {"serial", "cpu-levelset", "cpu-syncfree"};

  ServiceOptions opt;
  opt.coalesce_window = std::chrono::microseconds(100);
  SolveService svc(opt);

  struct Tenant {
    core::SolverPlan plan;
    std::vector<value_t> b;
    std::vector<value_t> batch;
    std::vector<value_t> want_single;
    std::vector<value_t> want_batch;
  };
  std::vector<Tenant> tenants;
  for (std::size_t m = 0; m < 3; ++m) {
    const sparse::CscMatrix l = service_matrix(40 + m);
    auto plan = svc.plan_for(l, kBackends[m]);
    ASSERT_TRUE(plan.ok()) << plan.message();
    std::vector<value_t> b = rhs_for(l, 50 + m);
    std::vector<value_t> batch;
    for (index_t j = 0; j < kBatchRhs; ++j) {
      const std::vector<value_t> col = rhs_for(l, 60 + m * 7 + static_cast<std::size_t>(j));
      batch.insert(batch.end(), col.begin(), col.end());
    }
    Tenant t{*plan, b, batch, plan->solve(b).value().x,
             plan->solve_batch(batch, kBatchRhs).value().x};
    tenants.push_back(std::move(t));
  }

  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int it = 0; it < kItersPerClient; ++it) {
        Tenant& t = tenants[static_cast<std::size_t>((c + it) % 3)];
        if ((c + it) % 2 == 0) {
          SolveService::Reply r = svc.submit(t.plan, t.b).get();
          if (!r.ok()) {
            failures.fetch_add(1);
          } else if (r.value().x != t.want_single) {
            mismatches.fetch_add(1);
          }
        } else {
          SolveService::Reply r =
              svc.submit_batch(t.plan, t.batch, kBatchRhs).get();
          if (!r.ok()) {
            failures.fetch_add(1);
          } else if (r.value().x != t.want_batch) {
            mismatches.fetch_add(1);
          }
        }
      }
    });
  }
  for (std::thread& th : clients) th.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0)
      << "service replies diverged from direct plan solves under contention";

  const ServiceStatsSnapshot s = svc.stats();
  const std::uint64_t total_rhs = static_cast<std::uint64_t>(kClients) *
                                  kItersPerClient / 2 *
                                  (1 + static_cast<std::uint64_t>(kBatchRhs));
  EXPECT_EQ(s.submitted, total_rhs);
  EXPECT_EQ(s.completed, total_rhs);
  EXPECT_EQ(s.failed, 0u);
  EXPECT_EQ(s.per_plan.size(), 3u);
  // No tenant owns kernel threads: everything ganged on the shared pool.
  for (const Tenant& t : tenants) {
    EXPECT_EQ(t.plan.owned_thread_count(), 0u);
  }
}

TEST(SolveService, PlanForIsAnalyzeOnFirstUse) {
  const sparse::CscMatrix l = service_matrix(21);
  SolveService svc;

  const auto first = svc.plan_for(l, "cpu-syncfree");
  ASSERT_TRUE(first.ok());
  const auto second = svc.plan_for(l, "cpu-syncfree");
  ASSERT_TRUE(second.ok());
  // Same symbolic state: submits through either copy coalesce together.
  EXPECT_EQ(first->state_id(), second->state_id());
  const core::PlanCache::Stats cs = svc.plan_cache().stats();
  EXPECT_EQ(cs.misses, 1u);
  EXPECT_EQ(cs.hits, 1u);

  // Unknown keys surface the registry's typed error.
  EXPECT_EQ(svc.plan_for(l, "no-such-backend").status(),
            core::SolveStatus::kUnknownBackend);
}

TEST(SolveService, PresetConstructionServesSimulatedBackends) {
  const sparse::CscMatrix l = service_matrix(23);
  SolveService svc;
  const auto plan = svc.plan_for_preset(l, "dgx1x8");
  ASSERT_TRUE(plan.ok()) << plan.message();
  EXPECT_EQ(plan->options().machine.num_gpus(), 8);
  EXPECT_TRUE(plan->options().use_shared_pool);

  const std::vector<value_t> b = rhs_for(l, 5);
  const std::vector<value_t> want = plan->solve(b).value().x;
  EXPECT_EQ(svc.submit(*plan, b).get().value().x, want);
}

TEST(SolveService, DestructorDrainsEverythingAdmitted) {
  const sparse::CscMatrix l = service_matrix(29);
  std::vector<std::future<SolveService::Reply>> futures;
  const std::vector<value_t> b = rhs_for(l, 9);
  std::vector<value_t> want;
  {
    ServiceOptions opt;
    opt.coalesce_window = std::chrono::microseconds(50000);
    SolveService svc(opt);
    const auto plan = svc.plan_for(l, "cpu-levelset");
    ASSERT_TRUE(plan.ok());
    want = plan->solve(b).value().x;
    for (int j = 0; j < 6; ++j) futures.push_back(svc.submit(*plan, b));
    // Service dies here with requests possibly still queued.
  }
  for (auto& f : futures) {
    SolveService::Reply r = f.get();
    ASSERT_TRUE(r.ok()) << r.message();
    EXPECT_EQ(r.value().x, want);
  }
}

// ---- shared worker pool ----------------------------------------------------

TEST(SharedWorkerPool, TasksRunAndStealAcrossDeques) {
  core::SharedWorkerPool pool(4);
  constexpr int kTasks = 64;
  std::atomic<int> done{0};
  for (int i = 0; i < kTasks; ++i) {
    pool.submit([&done] { done.fetch_add(1); });
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (pool.stats().tasks_run < static_cast<std::uint64_t>(kTasks) &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  EXPECT_EQ(done.load(), kTasks);
  EXPECT_EQ(pool.stats().tasks_run, static_cast<std::uint64_t>(kTasks));
}

TEST(SharedWorkerPool, GangsShrinkInsteadOfDeadlocking) {
  core::SharedWorkerPool pool(2);
  // Ask for far more members than exist: the gang must run anyway with
  // whatever was idle (possibly just the caller) and report the width.
  std::atomic<int> ran{0};
  const int parties = pool.run_gang(
      16, [](int) {}, [&](int tid, int p) {
        EXPECT_LT(tid, p);
        ran.fetch_add(1);
      });
  EXPECT_GE(parties, 1);
  EXPECT_LE(parties, 3);
  EXPECT_EQ(ran.load(), parties);
  EXPECT_GE(pool.stats().gangs, 1u);

  // Concurrent gang openers from foreign threads never deadlock even
  // when they collectively want every worker several times over.
  std::vector<std::thread> openers;
  std::atomic<int> total{0};
  for (int i = 0; i < 4; ++i) {
    openers.emplace_back([&] {
      for (int it = 0; it < 20; ++it) {
        pool.run_gang(
            8, [](int) {}, [&](int, int) { total.fetch_add(1); });
      }
    });
  }
  for (std::thread& th : openers) th.join();
  EXPECT_GE(total.load(), 4 * 20);  // at least the callers themselves ran
}

TEST(SharedWorkerPool, SharedPlansHoldZeroOwnedThreads) {
  const sparse::CscMatrix l = service_matrix(31);
  core::SolveOptions opt =
      core::registry::service_options("cpu-syncfree").value();
  const auto plan = core::SolverPlan::analyze(l, opt);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->owned_thread_count(), 0u);
  const std::vector<value_t> b = rhs_for(l, 2);

  // Same bits as an owned-pool plan, before and after solving.
  core::SolveOptions owned = core::registry::options_for("cpu-syncfree").value();
  const auto baseline = core::SolverPlan::analyze(l, owned);
  ASSERT_TRUE(baseline.ok());
  EXPECT_EQ(plan->solve(b).value().x, baseline->solve(b).value().x);

  EXPECT_GE(plan->workspace_count(), 1u);
  EXPECT_EQ(plan->owned_thread_count(), 0u)
      << "a shared-pool plan must never spawn per-workspace threads";
  // The owned-pool baseline really does own threads after its first
  // solve (unless the machine reports a single hardware thread).
  if (core::resolve_cpu_threads(0) > 1) {
    EXPECT_GT(baseline->owned_thread_count(), 0u);
  }
}

TEST(SharedWorkerPool, OwnedPoolsAreLazyUntilFirstSolve) {
  const sparse::CscMatrix l = service_matrix(37);
  core::SolveOptions opt = core::registry::options_for("cpu-levelset").value();
  const auto plan = core::SolverPlan::analyze(l, opt);
  ASSERT_TRUE(plan.ok());
  // Analyzed-but-never-solved plans hold zero threads (the idle-tenant
  // guarantee: a service caching hundreds of plans costs no threads).
  EXPECT_EQ(plan->owned_thread_count(), 0u);
  const std::vector<value_t> b = rhs_for(l, 4);
  ASSERT_TRUE(plan->solve(b).ok());
  if (core::resolve_cpu_threads(0) > 1) {
    EXPECT_GT(plan->owned_thread_count(), 0u);
  }
}

}  // namespace
}  // namespace msptrsv
