// The failpoint framework (support/failpoint.hpp) and its compiled-in
// sites: spec parsing, fire-count/skip modifiers, hit counters and
// wait_hits, the pause/release protocol, and the seams wired into blob
// decode, plan-cache disk IO, and the solve entry.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "core/msptrsv.hpp"
#include "support/blob.hpp"
#include "support/failpoint.hpp"

namespace msptrsv {
namespace {

using support::FailpointHit;

class FailpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!support::failpoints_compiled()) {
      GTEST_SKIP() << "built with MSPTRSV_FAILPOINTS=OFF";
    }
    support::failpoint_clear_all();
  }
  void TearDown() override { support::failpoint_clear_all(); }
};

TEST_F(FailpointTest, MalformedSpecsAreRejected) {
  EXPECT_FALSE(support::failpoint_set("t.site", "bogus"));
  EXPECT_FALSE(support::failpoint_set("t.site", "error("));
  EXPECT_FALSE(support::failpoint_set("t.site", "error(x)"));
  EXPECT_FALSE(support::failpoint_set("t.site", "error(7)*"));
  EXPECT_FALSE(support::failpoint_set("t.site", "error(7)@"));
  EXPECT_FALSE(support::failpoint_set("t.site", ""));
  // Nothing armed by any of the rejects.
  EXPECT_EQ(support::failpoint_armed_count(), 0u);
  EXPECT_FALSE(support::failpoint_eval("t.site"));
}

TEST_F(FailpointTest, ErrorActionCarriesItsCodeAndHonorsCountAndSkip) {
  // error(7)*2@1: let one evaluation through, fail twice with code 7,
  // then go quiet.
  ASSERT_TRUE(support::failpoint_set("t.site", "error(7)*2@1"));
  EXPECT_EQ(support::failpoint_eval("t.site").kind, FailpointHit::Kind::kOff);
  for (int i = 0; i < 2; ++i) {
    const FailpointHit hit = support::failpoint_eval("t.site");
    EXPECT_EQ(hit.kind, FailpointHit::Kind::kError);
    EXPECT_EQ(hit.arg, 7);
  }
  EXPECT_EQ(support::failpoint_eval("t.site").kind, FailpointHit::Kind::kOff);
  // Only the two real fires counted.
  EXPECT_EQ(support::failpoint_hits("t.site"), 2u);
}

TEST_F(FailpointTest, DelayAndPartialActionsReportTheirKind) {
  ASSERT_TRUE(support::failpoint_set("t.delay", "delay(100)"));
  EXPECT_EQ(support::failpoint_eval("t.delay").kind,
            FailpointHit::Kind::kDelay);
  ASSERT_TRUE(support::failpoint_set("t.partial", "partial(8)"));
  const FailpointHit hit = support::failpoint_eval("t.partial");
  EXPECT_EQ(hit.kind, FailpointHit::Kind::kPartial);
  EXPECT_EQ(hit.arg, 8);
}

TEST_F(FailpointTest, ArmedCountTracksSetAndClear) {
  EXPECT_EQ(support::failpoint_armed_count(), 0u);
  ASSERT_TRUE(support::failpoint_set("t.a", "error"));
  ASSERT_TRUE(support::failpoint_set("t.b", "delay(1)"));
  EXPECT_EQ(support::failpoint_armed_count(), 2u);
  ASSERT_TRUE(support::failpoint_set("t.a", "off"));
  EXPECT_EQ(support::failpoint_armed_count(), 1u);
  support::failpoint_clear_all();
  EXPECT_EQ(support::failpoint_armed_count(), 0u);
}

TEST_F(FailpointTest, PauseParksTheCallerUntilClearedAndWaitHitsSeesIt) {
  // Hit counters are CUMULATIVE across clear_all (process-lifetime), so a
  // park proof must wait for a hit BEYOND the baseline -- waiting for an
  // absolute count would pass vacuously after any earlier test fired the
  // same site, releasing the pause before the victim ever parked.
  const std::uint64_t base = support::failpoint_hits("t.pause");
  ASSERT_TRUE(support::failpoint_set("t.pause", "pause"));
  std::atomic<bool> released{false};
  std::thread victim([&] {
    (void)support::failpoint_eval("t.pause");
    released.store(true);
  });
  // The victim is PROVABLY parked: its hit counted, release flag unset.
  ASSERT_TRUE(support::failpoint_wait_hits("t.pause", base + 1, 10000));
  EXPECT_FALSE(released.load());
  support::failpoint_clear("t.pause");
  victim.join();
  EXPECT_TRUE(released.load());
}

TEST_F(FailpointTest, ReArmingReleasesCurrentPauseWaiters) {
  const std::uint64_t base = support::failpoint_hits("t.pause");
  ASSERT_TRUE(support::failpoint_set("t.pause", "pause"));
  std::thread victim([&] { (void)support::failpoint_eval("t.pause"); });
  ASSERT_TRUE(support::failpoint_wait_hits("t.pause", base + 1, 10000));
  // Replacing the arming (even with another pause) wakes the old waiters:
  // they were keyed on the previous arming's sequence number.
  ASSERT_TRUE(support::failpoint_set("t.pause", "pause"));
  victim.join();
  support::failpoint_clear("t.pause");
}

TEST_F(FailpointTest, WaitHitsTimesOutWhenTheSiteNeverFires) {
  EXPECT_FALSE(support::failpoint_wait_hits("t.never", 1, 50));
}

// ---- compiled-in sites -----------------------------------------------------

TEST_F(FailpointTest, BlobDecodeSiteFailsTheReaderTyped) {
  support::BlobWriter w(1);
  w.write_u32(42);
  const std::vector<std::uint8_t> bytes = std::move(w).finish();

  ASSERT_TRUE(support::failpoint_set("blob.decode", "error*1"));
  support::BlobReader injected(bytes, 1);
  EXPECT_FALSE(injected.ok());
  EXPECT_NE(injected.error().find("blob.decode"), std::string::npos);

  // One-shot: the next decode of the SAME bytes succeeds.
  support::BlobReader clean(bytes, 1);
  ASSERT_TRUE(clean.ok());
  EXPECT_EQ(clean.read_u32(), 42u);
}

TEST_F(FailpointTest, DiskSitesFailReadsAndWritesAndSimulateTornWrites) {
  namespace fs = std::filesystem;
  const std::string dir = ::testing::TempDir() + "failpoint_disk_" +
                          std::to_string(static_cast<unsigned>(::getpid()));
  fs::create_directories(dir);
  support::BlobWriter w(1);
  w.write_string("payload payload payload");
  const std::vector<std::uint8_t> bytes = std::move(w).finish();
  const std::string path = dir + "/victim.blob";

  ASSERT_TRUE(support::failpoint_set("cache.disk.write", "error*1"));
  EXPECT_FALSE(support::write_file(path, bytes));
  EXPECT_FALSE(fs::exists(path));
  EXPECT_TRUE(support::write_file(path, bytes));  // one-shot exhausted

  std::vector<std::uint8_t> back;
  ASSERT_TRUE(support::failpoint_set("cache.disk.read", "error*1"));
  EXPECT_FALSE(support::read_file(path, back));
  EXPECT_TRUE(support::read_file(path, back));
  EXPECT_EQ(back, bytes);

  // partial(N) publishes a TRUNCATED image at the final path -- the torn
  // write the atomic tmp+rename discipline normally makes impossible, and
  // exactly what fsck must catch as CRC-corrupt.
  ASSERT_TRUE(support::failpoint_set("cache.disk.write", "partial(10)*1"));
  EXPECT_FALSE(support::write_file(path, bytes));
  ASSERT_TRUE(support::read_file(path, back));
  EXPECT_EQ(back.size(), 10u);
  EXPECT_FALSE(support::BlobReader(back, 1).ok());

  fs::remove_all(dir);
}

TEST_F(FailpointTest, CoreSolveSiteInjectsTypedStatuses) {
  const sparse::CscMatrix l = sparse::gen_layered_dag(200, 8, 800, 0.5, 5);
  core::SolveOptions o = core::registry::options_for("serial").value();
  const auto plan = core::SolverPlan::analyze(l, o);
  ASSERT_TRUE(plan.ok());
  const std::vector<value_t> b =
      sparse::gen_rhs_for_solution(l, sparse::gen_solution(l.rows, 6));

  // error(7) == kOverloaded; the site generalizes the old server-side
  // inject knob down to the core, so ANY layer above sees a typed error
  // indistinguishable from the real condition.
  ASSERT_TRUE(support::failpoint_set("core.solve", "error(7)*1"));
  const auto injected = plan->solve(b);
  ASSERT_FALSE(injected.ok());
  EXPECT_EQ(injected.status(), core::SolveStatus::kOverloaded);
  EXPECT_TRUE(plan->solve(b).ok());
  EXPECT_GE(support::failpoint_hits("core.solve"), 1u);
}

}  // namespace
}  // namespace msptrsv
