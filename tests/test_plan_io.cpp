// Plan persistence: save -> load must reproduce the freshly analyzed
// plan's solves BIT-FOR-BIT on every backend (lower and upper, single and
// fused-batch), report analysis_us == 0 with a real load_us, and every
// way a blob can be wrong -- truncated, corrupted, wrong version, wrong
// backend, wrong structural hash -- must come back as
// SolveStatus::kBadSnapshot, never a crash or a silent misload.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "core/msptrsv.hpp"

namespace msptrsv {
namespace {

sparse::CscMatrix test_matrix() {
  return sparse::gen_layered_dag(900, 25, 5400, 0.4, 77);
}

sparse::CscMatrix test_upper() { return sparse::transpose(test_matrix()); }

std::vector<core::SolveOptions> all_backend_options() {
  std::vector<core::SolveOptions> out;
  for (const core::registry::BackendEntry& e : core::registry::backends()) {
    core::SolveOptions o = core::registry::default_options(e.backend);
    o.cpu_threads = 1;  // deterministic summation order for exact compares
    out.push_back(o);
  }
  return out;
}

std::string temp_plan_path(const std::string& tag) {
  return ::testing::TempDir() + "plan_io_" + tag + ".plan";
}

TEST(PlanIo, SaveLoadRoundTripsBitForBitOnEveryBackend) {
  const sparse::CscMatrix l = test_matrix();
  const index_t n = l.rows;
  std::vector<value_t> batch;
  for (index_t j = 0; j < 3; ++j) {
    const std::vector<value_t> bj = sparse::gen_rhs_for_solution(
        l, sparse::gen_solution(n, 30 + static_cast<std::uint64_t>(j)));
    batch.insert(batch.end(), bj.begin(), bj.end());
  }

  for (const core::SolveOptions& opt : all_backend_options()) {
    SCOPED_TRACE(core::backend_name(opt.backend));
    const auto fresh = core::SolverPlan::analyze(l, opt);
    ASSERT_TRUE(fresh.ok()) << fresh.message();

    const std::string path =
        temp_plan_path(core::registry::entry_of(opt.backend).key);
    ASSERT_TRUE(fresh->save(path).ok());
    const auto loaded = core::SolverPlan::load(path, opt);
    ASSERT_TRUE(loaded.ok()) << loaded.message();

    // The loaded plan never paid analysis; the restore cost is separate.
    EXPECT_EQ(loaded->analysis_us(), 0.0);
    EXPECT_GT(loaded->load_us(), 0.0);
    EXPECT_EQ(fresh->load_us(), 0.0);
    EXPECT_EQ(loaded->rows(), n);
    EXPECT_FALSE(loaded->is_upper());

    // Single solve and fused batch: identical bits and identical simulated
    // timing (the schedule is a pure function of the restored state).
    const std::vector<value_t> b = batch;
    const auto rf = fresh->solve(std::span<const value_t>(b).first(n));
    const auto rl = loaded->solve(std::span<const value_t>(b).first(n));
    ASSERT_TRUE(rf.ok());
    ASSERT_TRUE(rl.ok());
    EXPECT_EQ(rf.value().x, rl.value().x);
    EXPECT_EQ(rf.value().report.solve_us, rl.value().report.solve_us);
    EXPECT_EQ(rl.value().report.analysis_us, 0.0);

    const auto bf = fresh->solve_batch(batch, 3);
    const auto bl = loaded->solve_batch(batch, 3);
    ASSERT_TRUE(bf.ok());
    ASSERT_TRUE(bl.ok());
    EXPECT_EQ(bf.value().x, bl.value().x);
    EXPECT_EQ(bf.value().report.solve_us, bl.value().report.solve_us);
    std::remove(path.c_str());
  }
}

TEST(PlanIo, UpperPlansRoundTripOnEveryBackend) {
  const sparse::CscMatrix u = test_upper();
  const index_t n = u.rows;
  std::vector<value_t> batch;
  for (index_t j = 0; j < 2; ++j) {
    const std::vector<value_t> bj = sparse::gen_rhs_for_solution(
        u, sparse::gen_solution(n, 60 + static_cast<std::uint64_t>(j)));
    batch.insert(batch.end(), bj.begin(), bj.end());
  }

  for (const core::SolveOptions& opt : all_backend_options()) {
    SCOPED_TRACE(core::backend_name(opt.backend));
    const auto fresh = core::SolverPlan::analyze_upper(u, opt);
    ASSERT_TRUE(fresh.ok()) << fresh.message();

    const std::string path = temp_plan_path(
        std::string("upper_") + core::registry::entry_of(opt.backend).key);
    ASSERT_TRUE(fresh->save(path).ok());
    const auto loaded = core::SolverPlan::load(path, opt);
    ASSERT_TRUE(loaded.ok()) << loaded.message();
    EXPECT_TRUE(loaded->is_upper());
    EXPECT_EQ(loaded->analysis_us(), 0.0);

    const auto bf = fresh->solve_batch(batch, 2);
    const auto bl = loaded->solve_batch(batch, 2);
    ASSERT_TRUE(bf.ok());
    ASSERT_TRUE(bl.ok());
    EXPECT_EQ(bf.value().x, bl.value().x);
    std::remove(path.c_str());
  }
}

TEST(PlanIo, SerializeDeserializeRoundTripsInMemory) {
  const sparse::CscMatrix l = test_matrix();
  const core::SolveOptions opt =
      core::registry::options_for("mg-zerocopy").value();
  const auto fresh = core::SolverPlan::analyze(l, opt);
  ASSERT_TRUE(fresh.ok());
  const auto blob = fresh->serialize();
  ASSERT_TRUE(blob.ok());
  const auto loaded = core::SolverPlan::deserialize(blob.value(), opt);
  ASSERT_TRUE(loaded.ok()) << loaded.message();
  const std::vector<value_t> b =
      sparse::gen_rhs_for_solution(l, sparse::gen_solution(l.rows, 5));
  EXPECT_EQ(fresh->solve(b).value().x, loaded->solve(b).value().x);
  // The restored partition/footprint machinery works without re-analysis.
  EXPECT_EQ(loaded->partition().num_gpus(), fresh->partition().num_gpus());
  EXPECT_EQ(loaded->footprint().total_bytes, fresh->footprint().total_bytes);
}

TEST(PlanIo, AutotunedDecisionRoundTripsThroughTheBlob) {
  // The "auto" preset picks a backend at analyze time; the v3 blob must
  // carry that decision so a fresh process (here: deserialize into a new
  // plan, the same reader load() uses) reports the SAME backend /
  // schedule / gang choice instead of re-tuning, and the task graph
  // rebuilt from the pinned coarsening thresholds solves identically.
  // Fans wider than the narrow-width ceiling (64) on every machine, so
  // the decision is the same wherever this runs.
  const sparse::CscMatrix l = sparse::gen_chain_heavy(4, 120, 256, 2, 11);
  const core::SolveOptions opt = core::registry::options_for("auto").value();
  const auto fresh = core::SolverPlan::analyze(l, opt);
  ASSERT_TRUE(fresh.ok()) << fresh.message();

  const core::TunedDecision* td = fresh->tuned();
  ASSERT_NE(td, nullptr);
  EXPECT_TRUE(td->autotuned);
  // Chain-heavy structure: the rules must land on the coarsened schedule.
  EXPECT_EQ(td->backend, core::Backend::kCpuTaskGraph);
  EXPECT_EQ(td->schedule, 1);
  EXPECT_GT(td->gang_width, 0);
  EXPECT_GT(td->coarsen.narrow_width, 0);
  EXPECT_GT(td->coarsen.block_rows, 0);
  ASSERT_NE(fresh->task_graph(), nullptr);

  const auto blob = fresh->serialize();
  ASSERT_TRUE(blob.ok());
  const auto loaded = core::SolverPlan::deserialize(blob.value(), opt);
  ASSERT_TRUE(loaded.ok()) << loaded.message();

  const core::TunedDecision* ld = loaded->tuned();
  ASSERT_NE(ld, nullptr);
  EXPECT_EQ(ld->autotuned, td->autotuned);
  EXPECT_EQ(ld->backend, td->backend);
  EXPECT_EQ(ld->schedule, td->schedule);
  EXPECT_EQ(ld->gang_width, td->gang_width);
  // The coarsening thresholds are PINNED in the blob (the sync-cost
  // measurement on the loading machine may differ); the rebuilt graph
  // must therefore coarsen identically.
  EXPECT_EQ(ld->coarsen.narrow_width, td->coarsen.narrow_width);
  EXPECT_EQ(ld->coarsen.block_rows, td->coarsen.block_rows);
  ASSERT_NE(loaded->task_graph(), nullptr);
  EXPECT_EQ(loaded->task_graph()->num_tasks, fresh->task_graph()->num_tasks);
  EXPECT_EQ(loaded->task_graph()->levels_fused,
            fresh->task_graph()->levels_fused);

  const std::vector<value_t> b =
      sparse::gen_rhs_for_solution(l, sparse::gen_solution(l.rows, 9));
  EXPECT_EQ(fresh->solve(b).value().x, loaded->solve(b).value().x);
}

TEST(PlanIo, AutotunedSerialPickRoundTrips) {
  // The other side of the decision space: a tiny factor must tune to
  // serial, and that choice must survive the blob too.
  const sparse::CscMatrix l = sparse::gen_chain(64);
  const core::SolveOptions opt = core::registry::options_for("auto").value();
  const auto fresh = core::SolverPlan::analyze(l, opt);
  ASSERT_TRUE(fresh.ok()) << fresh.message();
  ASSERT_NE(fresh->tuned(), nullptr);
  EXPECT_EQ(fresh->tuned()->backend, core::Backend::kSerial);

  const auto blob = fresh->serialize();
  ASSERT_TRUE(blob.ok());
  const auto loaded = core::SolverPlan::deserialize(blob.value(), opt);
  ASSERT_TRUE(loaded.ok()) << loaded.message();
  ASSERT_NE(loaded->tuned(), nullptr);
  EXPECT_EQ(loaded->tuned()->backend, core::Backend::kSerial);
  EXPECT_EQ(loaded->tuned()->gang_width, fresh->tuned()->gang_width);

  const std::vector<value_t> b =
      sparse::gen_rhs_for_solution(l, sparse::gen_solution(l.rows, 3));
  EXPECT_EQ(fresh->solve(b).value().x, loaded->solve(b).value().x);
}

TEST(PlanIo, EmptyPlanRoundTrips) {
  const sparse::CscMatrix empty;  // 0x0: vacuously solvable
  const core::SolveOptions opt = core::registry::options_for("serial").value();
  const auto fresh = core::SolverPlan::analyze(empty, opt);
  ASSERT_TRUE(fresh.ok());
  const auto blob = fresh->serialize();
  ASSERT_TRUE(blob.ok());
  const auto loaded = core::SolverPlan::deserialize(blob.value(), opt);
  ASSERT_TRUE(loaded.ok()) << loaded.message();
  EXPECT_EQ(loaded->rows(), 0);
  EXPECT_TRUE(loaded->solve({}).ok());
}

// ---- v2 layout field + lean/fat/v1 format compatibility --------------------

TEST(PlanIoLayout, RhsLayoutRoundTripsThroughTheBlob) {
  const sparse::CscMatrix l = test_matrix();
  for (const core::RhsLayout layout :
       {core::RhsLayout::kInterleaved, core::RhsLayout::kColumnMajor}) {
    core::SolveOptions opt = core::registry::options_for("cpu-levelset").value();
    opt.cpu_threads = 1;
    opt.rhs_layout = layout;
    const auto fresh = core::SolverPlan::analyze(l, opt);
    ASSERT_TRUE(fresh.ok());
    ASSERT_EQ(fresh->rhs_layout(), layout);

    // Load with layout-neutral options: the STORED resolved layout wins.
    core::SolveOptions neutral = opt;
    neutral.rhs_layout = core::RhsLayout::kAuto;
    const auto loaded =
        core::SolverPlan::deserialize(fresh->serialize().value(), neutral);
    ASSERT_TRUE(loaded.ok()) << loaded.message();
    EXPECT_EQ(loaded->rhs_layout(), layout);

    // An explicit option at restore overrides the stored choice.
    core::SolveOptions forced = opt;
    forced.rhs_layout = layout == core::RhsLayout::kInterleaved
                            ? core::RhsLayout::kColumnMajor
                            : core::RhsLayout::kInterleaved;
    const auto overridden =
        core::SolverPlan::deserialize(fresh->serialize().value(), forced);
    ASSERT_TRUE(overridden.ok());
    EXPECT_EQ(overridden->rhs_layout(), forced.rhs_layout);
  }
}

TEST(PlanIoLayout, LeanBlobIsSmallerAndLoadsBitForBit) {
  // The v2 default omits the row form (it duplicates every factor value);
  // the load path must rebuild it and solve exactly like the fat image.
  const sparse::CscMatrix l = test_matrix();
  for (const char* key : {"cpu-levelset", "cpu-syncfree"}) {
    SCOPED_TRACE(key);
    core::SolveOptions opt = core::registry::options_for(key).value();
    opt.cpu_threads = 1;
    const auto fresh = core::SolverPlan::analyze(l, opt);
    ASSERT_TRUE(fresh.ok());

    const auto lean = fresh->serialize();
    core::SnapshotWriteOptions fat_opts;
    fat_opts.include_row_form = true;
    const auto fat = fresh->serialize(fat_opts);
    ASSERT_TRUE(lean.ok() && fat.ok());
    EXPECT_LT(lean.value().size(), fat.value().size());

    const auto from_lean = core::SolverPlan::deserialize(lean.value(), opt);
    const auto from_fat = core::SolverPlan::deserialize(fat.value(), opt);
    ASSERT_TRUE(from_lean.ok()) << from_lean.message();
    ASSERT_TRUE(from_fat.ok()) << from_fat.message();

    const std::vector<value_t> b =
        sparse::gen_rhs_for_solution(l, sparse::gen_solution(l.rows, 21));
    const std::vector<value_t> expect = fresh->solve(b).value().x;
    EXPECT_EQ(from_lean->solve(b).value().x, expect);
    EXPECT_EQ(from_fat->solve(b).value().x, expect);
  }
}

TEST(PlanIoLayout, V1FormatBlobsStillLoad) {
  // A cache written by the previous binary must outlive the upgrade: the
  // v1 stream (no layout byte, fat row form) loads, resolves its layout
  // by backend exactly as v1-era plans did implicitly, and solves
  // bit-for-bit.
  const sparse::CscMatrix l = test_matrix();
  for (const char* key : {"cpu-levelset", "cpu-syncfree", "serial"}) {
    SCOPED_TRACE(key);
    core::SolveOptions opt = core::registry::options_for(key).value();
    opt.cpu_threads = 1;
    const auto fresh = core::SolverPlan::analyze(l, opt);
    ASSERT_TRUE(fresh.ok());

    core::SnapshotWriteOptions v1;
    v1.format_version = 1;
    const auto blob = fresh->serialize(v1);
    ASSERT_TRUE(blob.ok());
    // Header bytes 4..5 carry the stored version, little-endian.
    ASSERT_EQ(blob.value()[4], 1);
    ASSERT_EQ(blob.value()[5], 0);

    const auto loaded = core::SolverPlan::deserialize(blob.value(), opt);
    ASSERT_TRUE(loaded.ok()) << loaded.message();
    EXPECT_EQ(loaded->rhs_layout(),
              core::resolve_rhs_layout(core::RhsLayout::kAuto, opt.backend));
    const std::vector<value_t> b =
        sparse::gen_rhs_for_solution(l, sparse::gen_solution(l.rows, 22));
    EXPECT_EQ(loaded->solve(b).value().x, fresh->solve(b).value().x);
  }
}

TEST(PlanIoLayout, UnknownLayoutByteIsBadSnapshot) {
  // The layout byte sits right after the backend key string, tasks (i32),
  // gpus (i32), and upper byte -- corrupt it via the snapshot API rather
  // than byte surgery: serialize a snapshot claiming an out-of-range
  // layout and expect the typed rejection.
  const sparse::CscMatrix l = test_matrix();
  core::SolveOptions opt = core::registry::options_for("serial").value();
  const auto fresh = core::SolverPlan::analyze(l, opt);
  ASSERT_TRUE(fresh.ok());
  core::PlanSnapshot snap;
  snap.backend = core::Backend::kSerial;
  snap.tasks_per_gpu = opt.tasks_per_gpu;
  snap.num_gpus = opt.machine.num_gpus();
  snap.rhs_layout = static_cast<core::RhsLayout>(250);
  const std::vector<std::uint8_t> blob = core::serialize_snapshot(snap, l);
  const auto r = core::SolverPlan::deserialize(blob, opt);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status(), core::SolveStatus::kBadSnapshot);
  EXPECT_NE(r.message().find("layout"), std::string::npos) << r.message();
}

// ---- error paths -----------------------------------------------------------

TEST(PlanIo, MissingFileIsBadSnapshot) {
  const auto r = core::SolverPlan::load(
      temp_plan_path("definitely_missing"),
      core::registry::options_for("serial").value());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status(), core::SolveStatus::kBadSnapshot);
}

TEST(PlanIo, TruncatedBlobIsBadSnapshot) {
  const sparse::CscMatrix l = test_matrix();
  const core::SolveOptions opt = core::registry::options_for("serial").value();
  const auto blob = core::SolverPlan::analyze(l, opt)->serialize().value();
  // Every truncation point must be detected (CRC trailer or bounds check),
  // including mid-header.
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{5}, std::size_t{40}, blob.size() / 2,
        blob.size() - 1}) {
    const auto r = core::SolverPlan::deserialize(
        std::span<const std::uint8_t>(blob).first(keep), opt);
    ASSERT_FALSE(r.ok()) << "kept " << keep << " bytes";
    EXPECT_EQ(r.status(), core::SolveStatus::kBadSnapshot);
  }
}

TEST(PlanIo, CorruptedByteIsBadSnapshot) {
  const sparse::CscMatrix l = test_matrix();
  const core::SolveOptions opt = core::registry::options_for("serial").value();
  auto blob = core::SolverPlan::analyze(l, opt)->serialize().value();
  // Flip one payload byte deep in the value array: only the CRC can see it.
  blob[blob.size() / 2] ^= 0x40;
  const auto r = core::SolverPlan::deserialize(blob, opt);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status(), core::SolveStatus::kBadSnapshot);
  EXPECT_NE(r.message().find("CRC"), std::string::npos) << r.message();
}

TEST(PlanIo, WrongVersionIsBadSnapshot) {
  const sparse::CscMatrix l = test_matrix();
  const core::SolveOptions opt = core::registry::options_for("serial").value();
  auto blob = core::SolverPlan::analyze(l, opt)->serialize().value();
  blob[4] = 0x7F;  // version field lives at header bytes 4..5
  const auto r = core::SolverPlan::deserialize(blob, opt);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status(), core::SolveStatus::kBadSnapshot);
  EXPECT_NE(r.message().find("version"), std::string::npos) << r.message();
}

TEST(PlanIo, BackendMismatchIsBadSnapshot) {
  const sparse::CscMatrix l = test_matrix();
  const auto blob =
      core::SolverPlan::analyze(
          l, core::registry::options_for("mg-zerocopy").value())
          ->serialize()
          .value();
  const auto r = core::SolverPlan::deserialize(
      blob, core::registry::options_for("cpu-levelset").value());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status(), core::SolveStatus::kBadSnapshot);
}

TEST(PlanIo, GpuCountMismatchIsBadSnapshot) {
  const sparse::CscMatrix l = test_matrix();
  core::SolveOptions opt = core::registry::options_for("mg-zerocopy").value();
  const auto blob = core::SolverPlan::analyze(l, opt)->serialize().value();
  opt.machine = sim::Machine::dgx1(2);
  const auto r = core::SolverPlan::deserialize(blob, opt);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status(), core::SolveStatus::kBadSnapshot);
  EXPECT_NE(r.message().find("GPU"), std::string::npos) << r.message();
}

TEST(PlanIo, BorrowedLoadChecksStructuralHash) {
  const sparse::CscMatrix l = test_matrix();
  const core::SolveOptions opt =
      core::registry::options_for("cpu-syncfree").value();
  const std::string path = temp_plan_path("borrowed");
  ASSERT_TRUE(core::SolverPlan::analyze(l, opt)->save(path).ok());

  // Same pattern, same values: borrows and solves identically.
  const auto ok_load = core::SolverPlan::load_borrowed(path, l, opt);
  ASSERT_TRUE(ok_load.ok()) << ok_load.message();
  const std::vector<value_t> b =
      sparse::gen_rhs_for_solution(l, sparse::gen_solution(l.rows, 9));
  EXPECT_EQ(ok_load->solve(b).value().x,
            core::SolverPlan::analyze(l, opt)->solve(b).value().x);

  // Same pattern, refreshed values: accepted, and solves match a FRESH
  // analysis of the refreshed matrix (the cached row form re-syncs).
  sparse::CscMatrix scaled = l;
  for (value_t& v : scaled.val) v *= 1.5;
  const auto scaled_load = core::SolverPlan::load_borrowed(path, scaled, opt);
  ASSERT_TRUE(scaled_load.ok()) << scaled_load.message();
  const std::vector<value_t> b2 =
      sparse::gen_rhs_for_solution(scaled, sparse::gen_solution(l.rows, 10));
  EXPECT_EQ(scaled_load->solve(b2).value().x,
            core::SolverPlan::analyze(scaled, opt)->solve(b2).value().x);

  // Refreshed values with a zero diagonal: the saved plan's singularity
  // guarantee no longer covers them, so the load re-checks and rejects.
  sparse::CscMatrix singular = scaled;
  singular.val[static_cast<std::size_t>(singular.col_ptr[1])] = 0.0;
  EXPECT_EQ(core::SolverPlan::load_borrowed(path, singular, opt).status(),
            core::SolveStatus::kSingularDiagonal);

  // Different pattern: rejected by the hash check.
  const sparse::CscMatrix other = sparse::gen_layered_dag(900, 25, 5500, 0.4, 78);
  const auto bad = core::SolverPlan::load_borrowed(path, other, opt);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status(), core::SolveStatus::kBadSnapshot);
  EXPECT_NE(bad.message().find("hash"), std::string::npos) << bad.message();
  std::remove(path.c_str());
}

TEST(PlanIo, InDegreeDriftIsRejectedNotHung) {
  // A CRC-valid blob whose in-degrees disagree with its factor would make
  // the sync-free kernel spin forever on its delivery counters; the load
  // must reject it, not hand the hang to the first solve.
  const sparse::CscMatrix l = test_matrix();
  core::SolveOptions opt = core::registry::options_for("cpu-syncfree").value();
  opt.cpu_threads = 1;

  core::PlanSnapshot snap;
  snap.backend = core::Backend::kCpuSyncFree;
  snap.tasks_per_gpu = opt.tasks_per_gpu;
  snap.num_gpus = opt.machine.num_gpus();
  snap.in_degrees = sparse::compute_in_degrees(l);
  snap.in_degrees[0] += 1;  // one undeliverable dependency
  snap.row_form = sparse::csr_from_csc(l);
  const std::vector<std::uint8_t> blob = core::serialize_snapshot(snap, l);

  const auto r = core::SolverPlan::deserialize(blob, opt);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status(), core::SolveStatus::kBadSnapshot);
  EXPECT_NE(r.message().find("in-degree"), std::string::npos) << r.message();
}

TEST(PlanIo, BorrowedLoadOfUpperPlanIsRejected) {
  const sparse::CscMatrix u = test_upper();
  const core::SolveOptions opt = core::registry::options_for("serial").value();
  const std::string path = temp_plan_path("borrowed_upper");
  ASSERT_TRUE(core::SolverPlan::analyze_upper(u, opt)->save(path).ok());
  const auto r = core::SolverPlan::load_borrowed(path, u, opt);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status(), core::SolveStatus::kBadSnapshot);
  std::remove(path.c_str());
}

// ---- update_values(CscMatrix) sparsity-checked overload --------------------

TEST(PlanUpdateValuesMatrix, AcceptsSamePatternAndRefreshesSolves) {
  const sparse::CscMatrix l = test_matrix();
  core::SolveOptions opt = core::registry::options_for("cpu-levelset").value();
  opt.cpu_threads = 1;
  auto plan = core::SolverPlan::analyze(l, opt).value();

  sparse::CscMatrix scaled = l;
  for (value_t& v : scaled.val) v *= 2.0;
  ASSERT_TRUE(plan.update_values(scaled).ok());

  const std::vector<value_t> b =
      sparse::gen_rhs_for_solution(scaled, sparse::gen_solution(l.rows, 4));
  EXPECT_EQ(plan.solve(b).value().x,
            core::SolverPlan::analyze(scaled, opt)->solve(b).value().x);
}

TEST(PlanUpdateValuesMatrix, RejectsDifferentPattern) {
  const sparse::CscMatrix l = test_matrix();
  auto plan = core::SolverPlan::analyze(
                  l, core::registry::options_for("serial").value())
                  .value();
  const sparse::CscMatrix other =
      sparse::gen_layered_dag(900, 25, 5500, 0.4, 78);
  const auto r = plan.update_values(other);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status(), core::SolveStatus::kShapeMismatch);

  const sparse::CscMatrix smaller = sparse::gen_layered_dag(400, 10, 2000, 0.4, 1);
  EXPECT_EQ(plan.update_values(smaller).status(),
            core::SolveStatus::kShapeMismatch);
}

TEST(PlanUpdateValuesMatrix, UpperPlanChecksMirroredPattern) {
  const sparse::CscMatrix u = test_upper();
  const core::SolveOptions opt = core::registry::options_for("serial").value();
  auto plan = core::SolverPlan::analyze_upper(u, opt).value();

  sparse::CscMatrix scaled = u;
  for (value_t& v : scaled.val) v *= 3.0;
  ASSERT_TRUE(plan.update_values(scaled).ok());
  const std::vector<value_t> b =
      sparse::gen_rhs_for_solution(scaled, sparse::gen_solution(u.rows, 6));
  EXPECT_EQ(plan.solve(b).value().x,
            core::SolverPlan::analyze_upper(scaled, opt)->solve(b).value().x);

  // A lower matrix has the wrong (mirrored) pattern for an upper plan.
  EXPECT_EQ(plan.update_values(test_matrix()).status(),
            core::SolveStatus::kShapeMismatch);
}

}  // namespace
}  // namespace msptrsv
