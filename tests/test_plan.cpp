// The phase-split API contract: a SolverPlan analyzed once must reproduce
// the one-shot API bit-for-bit on every backend across many right-hand
// sides, solve_batch must match looped solve, the analysis phase must be
// charged exactly once, and user-input errors must come back through the
// SolveStatus channel instead of thrown contract violations.
#include <gtest/gtest.h>

#include <span>
#include <string>
#include <vector>

#include "core/msptrsv.hpp"

namespace msptrsv {
namespace {

sparse::CscMatrix test_matrix() {
  return sparse::gen_layered_dag(800, 20, 4800, 0.5, 21);
}

std::vector<value_t> rhs_for(const sparse::CscMatrix& l, std::uint64_t seed) {
  return sparse::gen_rhs_for_solution(l, sparse::gen_solution(l.rows, seed));
}

/// Every backend in its registry-default configuration. Host thread counts
/// are pinned to 1 so the floating-point summation order is deterministic
/// and the bit-for-bit comparisons below are exact.
std::vector<core::SolveOptions> all_backend_options() {
  std::vector<core::SolveOptions> out;
  for (const core::registry::BackendEntry& e : core::registry::backends()) {
    core::SolveOptions o = core::registry::default_options(e.backend);
    o.cpu_threads = 1;
    out.push_back(o);
  }
  return out;
}

TEST(SolverPlanReuse, MatchesOneShotBitForBitOnEveryBackend) {
  const sparse::CscMatrix l = test_matrix();
  for (const core::SolveOptions& opt : all_backend_options()) {
    const auto plan = core::SolverPlan::analyze(l, opt);
    ASSERT_TRUE(plan.ok()) << core::backend_name(opt.backend) << ": "
                           << plan.message();
    for (std::uint64_t seed : {11, 22, 33}) {
      const std::vector<value_t> b = rhs_for(l, seed);
      const auto r = plan->solve(b);
      ASSERT_TRUE(r.ok()) << core::backend_name(opt.backend);
      const core::SolveResult one_shot = core::solve(l, b, opt);
      EXPECT_EQ(r.value().x, one_shot.x)
          << core::backend_name(opt.backend) << " seed " << seed;
    }
  }
}

TEST(SolverPlanReuse, RepeatedSolvesAreIdenticalAndNeverReanalyze) {
  const sparse::CscMatrix l = test_matrix();
  const std::vector<value_t> b = rhs_for(l, 5);
  const auto plan = core::SolverPlan::analyze(
      l, core::registry::options_for("mg-zerocopy").value());
  ASSERT_TRUE(plan.ok());
  EXPECT_GT(plan->analysis_us(), 0.0);

  const auto r1 = plan->solve(b);
  const auto r2 = plan->solve(b);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r1.value().x, r2.value().x);
  EXPECT_EQ(r1.value().report.solve_us, r2.value().report.solve_us);
  // Analysis is charged once at analyze() time, never per solve.
  EXPECT_EQ(r1.value().report.analysis_us, 0.0);
  EXPECT_EQ(r2.value().report.analysis_us, 0.0);
}

TEST(SolverPlanReuse, OneShotWrapperChargesAnalysisExactlyOnce) {
  const sparse::CscMatrix l = test_matrix();
  const std::vector<value_t> b = rhs_for(l, 9);
  core::SolveOptions opt = core::registry::options_for("mg-zerocopy").value();

  const auto plan = core::SolverPlan::analyze(l, opt);
  ASSERT_TRUE(plan.ok());
  const core::SolveResult one_shot = core::solve(l, b, opt);
  EXPECT_EQ(one_shot.report.analysis_us, plan->analysis_us());
  EXPECT_GT(one_shot.report.analysis_us, 0.0);

  opt.include_analysis = false;
  const core::SolveResult bare = core::solve(l, b, opt);
  EXPECT_EQ(bare.report.analysis_us, 0.0);
  EXPECT_EQ(bare.report.solve_us, one_shot.report.solve_us);
}

TEST(SolverPlanReuse, GpuLevelsetRespectsIncludeAnalysis) {
  // The csrsv2 stand-in historically charged its (heavy) analysis phase
  // unconditionally; the plan-based wrapper honors include_analysis for it
  // like for every other simulated backend.
  const sparse::CscMatrix l = test_matrix();
  const std::vector<value_t> b = rhs_for(l, 3);
  core::SolveOptions opt = core::registry::options_for("gpu-levelset").value();
  const core::SolveResult with = core::solve(l, b, opt);
  EXPECT_GT(with.report.analysis_us, 0.0);
  opt.include_analysis = false;
  const core::SolveResult without = core::solve(l, b, opt);
  EXPECT_EQ(without.report.analysis_us, 0.0);
  EXPECT_EQ(with.report.solve_us, without.report.solve_us);
}

TEST(SolverPlanBatch, MatchesLoopedSolveOnEveryBackend) {
  // Looped mode (fuse_batch = false) keeps the PR 1 accumulate semantics:
  // num_rhs independent solves whose reports sum. The fused default is
  // covered by test_exec_engine (bit-for-bit x, amortized timing).
  const sparse::CscMatrix l = test_matrix();
  const index_t num_rhs = 5;
  const std::size_t n = static_cast<std::size_t>(l.rows);

  std::vector<value_t> batch;
  for (index_t j = 0; j < num_rhs; ++j) {
    const std::vector<value_t> bj =
        rhs_for(l, 40 + static_cast<std::uint64_t>(j));
    batch.insert(batch.end(), bj.begin(), bj.end());
  }

  for (core::SolveOptions opt : all_backend_options()) {
    opt.fuse_batch = false;
    const auto plan = core::SolverPlan::analyze(l, opt);
    ASSERT_TRUE(plan.ok());
    const auto rb = plan->solve_batch(batch, num_rhs);
    ASSERT_TRUE(rb.ok()) << core::backend_name(opt.backend);
    ASSERT_EQ(rb.value().x.size(), n * static_cast<std::size_t>(num_rhs));
    EXPECT_EQ(rb.value().report.num_rhs, num_rhs);
    EXPECT_EQ(rb.value().report.analysis_us, 0.0);

    double summed_solve_us = 0.0;
    for (index_t j = 0; j < num_rhs; ++j) {
      const std::span<const value_t> col =
          std::span<const value_t>(batch).subspan(
              static_cast<std::size_t>(j) * n, n);
      const auto rj = plan->solve(col);
      ASSERT_TRUE(rj.ok());
      summed_solve_us += rj.value().report.solve_us;
      const std::vector<value_t> batch_col(
          rb.value().x.begin() + static_cast<std::ptrdiff_t>(j) *
                                     static_cast<std::ptrdiff_t>(n),
          rb.value().x.begin() + (static_cast<std::ptrdiff_t>(j) + 1) *
                                     static_cast<std::ptrdiff_t>(n));
      EXPECT_EQ(batch_col, rj.value().x)
          << core::backend_name(opt.backend) << " rhs " << j;
    }
    EXPECT_DOUBLE_EQ(rb.value().report.solve_us, summed_solve_us)
        << core::backend_name(opt.backend);
    if (core::is_simulated(opt.backend)) {
      EXPECT_GT(rb.value().report.max_solve_us, 0.0);
      EXPECT_LE(rb.value().report.max_solve_us, rb.value().report.solve_us);
    }
  }
}

TEST(SolverPlanUpper, SolvesBackwardAndExcludesTransformFromTimings) {
  const sparse::CscMatrix lower = sparse::gen_layered_dag(600, 15, 3000, 0.5, 8);
  const sparse::CscMatrix upper = sparse::mirror_to_upper(lower);
  const std::vector<value_t> x_ref = sparse::gen_solution(upper.rows, 31);
  const std::vector<value_t> b = sparse::multiply(upper, x_ref);
  const core::SolveOptions opt =
      core::registry::options_for("mg-zerocopy").value();

  const auto plan = core::SolverPlan::analyze_upper(upper, opt);
  ASSERT_TRUE(plan.ok()) << plan.message();
  EXPECT_TRUE(plan->is_upper());
  const auto r = plan->solve(b);
  ASSERT_TRUE(r.ok());
  EXPECT_LT(core::max_relative_difference(r.value().x, x_ref), 1e-9);

  // The one-shot wrapper goes through the same plan machinery.
  const core::SolveResult one_shot = core::solve_upper(upper, b, opt);
  EXPECT_EQ(one_shot.x, r.value().x);

  // Timing purity: the reported solve time must equal solving the reversed
  // lower system directly -- the host-side reversal transforms are
  // analysis-phase work, never part of the measured solve.
  const sparse::CscMatrix reversed_lower = core::reverse_upper_to_lower(upper);
  const std::vector<value_t> rb = core::reversed(b);
  const core::SolveResult direct = core::solve(reversed_lower, rb, opt);
  EXPECT_EQ(r.value().report.solve_us, direct.report.solve_us);
  EXPECT_EQ(one_shot.report.solve_us, direct.report.solve_us);
}

TEST(SolverPlanErrors, RhsShapeMismatchIsAStatusNotAThrow) {
  const sparse::CscMatrix l = test_matrix();
  const auto plan = core::SolverPlan::analyze(
      l, core::registry::options_for("serial").value());
  ASSERT_TRUE(plan.ok());

  const std::vector<value_t> short_b(static_cast<std::size_t>(l.rows) - 1, 1.0);
  const auto r = plan->solve(short_b);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status(), core::SolveStatus::kShapeMismatch);
  EXPECT_NE(r.message().find("rhs length"), std::string::npos);

  const auto rb = plan->solve_batch(short_b, 1);
  EXPECT_EQ(rb.status(), core::SolveStatus::kShapeMismatch);
  const std::vector<value_t> good(static_cast<std::size_t>(l.rows), 1.0);
  EXPECT_EQ(plan->solve_batch(good, 0).status(),
            core::SolveStatus::kShapeMismatch);
  EXPECT_EQ(plan->solve_batch(good, 2).status(),
            core::SolveStatus::kShapeMismatch);
}

TEST(SolverPlanErrors, NonTriangularInputIsReported) {
  sparse::CooMatrix coo;
  coo.rows = coo.cols = 3;
  coo.add(0, 0, 1.0);
  coo.add(1, 1, 1.0);
  coo.add(2, 2, 1.0);
  coo.add(0, 2, 0.5);  // above the diagonal
  const sparse::CscMatrix not_lower = sparse::csc_from_coo(std::move(coo));

  const auto plan = core::SolverPlan::analyze(
      not_lower, core::registry::options_for("serial").value());
  EXPECT_FALSE(plan.ok());
  EXPECT_EQ(plan.status(), core::SolveStatus::kNotTriangular);
}

TEST(SolverPlanErrors, NonSquareInputIsReported) {
  sparse::CooMatrix coo;
  coo.rows = 3;
  coo.cols = 2;
  coo.add(0, 0, 1.0);
  coo.add(1, 1, 1.0);
  const sparse::CscMatrix rect = sparse::csc_from_coo(std::move(coo));
  const auto plan = core::SolverPlan::analyze(
      rect, core::registry::options_for("serial").value());
  EXPECT_FALSE(plan.ok());
  EXPECT_EQ(plan.status(), core::SolveStatus::kNotTriangular);
}

TEST(SolverPlanErrors, MissingDiagonalIsSingular) {
  sparse::CooMatrix coo;
  coo.rows = coo.cols = 2;
  coo.add(1, 0, 1.0);  // column 0 has no diagonal
  coo.add(1, 1, 2.0);
  const sparse::CscMatrix singular = sparse::csc_from_coo(std::move(coo));
  const auto plan = core::SolverPlan::analyze(
      singular, core::registry::options_for("serial").value());
  EXPECT_FALSE(plan.ok());
  EXPECT_EQ(plan.status(), core::SolveStatus::kSingularDiagonal);
}

TEST(SolverPlanErrors, EmptySystemSolvesVacuouslyOnEveryBackend) {
  // 0x0 systems are degenerate but valid: the historical host backends
  // solved them trivially and the plan API must not regress that.
  sparse::CscMatrix empty;  // 0x0
  empty.col_ptr.assign(1, 0);
  for (const core::SolveOptions& opt : all_backend_options()) {
    const auto plan = core::SolverPlan::analyze(empty, opt);
    ASSERT_TRUE(plan.ok()) << core::backend_name(opt.backend) << ": "
                           << plan.message();
    EXPECT_EQ(plan->rows(), 0);
    const auto r = plan->solve(std::span<const value_t>{});
    ASSERT_TRUE(r.ok()) << core::backend_name(opt.backend);
    EXPECT_TRUE(r.value().x.empty());
  }
  // The legacy wrapper keeps its pre-plan behavior too.
  const core::SolveResult legacy = core::solve(
      empty, {}, core::registry::options_for("serial").value());
  EXPECT_TRUE(legacy.x.empty());
}

TEST(SolverPlanReuse, BorrowedPlanMatchesOwningPlan) {
  const sparse::CscMatrix l = test_matrix();
  const std::vector<value_t> b = rhs_for(l, 13);
  const core::SolveOptions opt =
      core::registry::options_for("mg-zerocopy").value();
  const auto owning = core::SolverPlan::analyze(l, opt);
  const auto borrowed = core::SolverPlan::analyze_borrowed(l, opt);
  ASSERT_TRUE(owning.ok());
  ASSERT_TRUE(borrowed.ok());
  const auto ro = owning->solve(b);
  const auto rb = borrowed->solve(b);
  ASSERT_TRUE(ro.ok());
  ASSERT_TRUE(rb.ok());
  EXPECT_EQ(ro.value().x, rb.value().x);
  EXPECT_EQ(ro.value().report.solve_us, rb.value().report.solve_us);
  EXPECT_EQ(owning->analysis_us(), borrowed->analysis_us());
}

TEST(SolverPlanErrors, InvalidOptionsAreReported) {
  const sparse::CscMatrix l = sparse::gen_chain(16);
  core::SolveOptions opt = core::registry::options_for("mg-zerocopy").value();
  opt.tasks_per_gpu = 0;
  const auto plan = core::SolverPlan::analyze(l, opt);
  EXPECT_FALSE(plan.ok());
  EXPECT_EQ(plan.status(), core::SolveStatus::kInvalidOptions);
}

TEST(SolverPlanErrors, LegacyWrapperStillThrowsOnBadInput) {
  const sparse::CscMatrix l = sparse::gen_chain(16);
  const std::vector<value_t> short_b(8, 1.0);
  const core::SolveOptions opt = core::registry::options_for("serial").value();
  EXPECT_THROW(core::solve(l, short_b, opt), support::PreconditionError);
}

TEST(SolverPlanAccessors, ExposeCachedAnalysisState) {
  const sparse::CscMatrix l = test_matrix();

  const auto zero = core::SolverPlan::analyze(
      l, core::registry::options_for("mg-zerocopy").value());
  ASSERT_TRUE(zero.ok());
  EXPECT_EQ(zero->rows(), l.rows);
  EXPECT_FALSE(zero->is_upper());
  EXPECT_EQ(zero->partition().n(), l.rows);
  EXPECT_EQ(zero->partition().num_gpus(), 4);
  EXPECT_EQ(zero->in_degrees().size(), static_cast<std::size_t>(l.rows));
  EXPECT_EQ(zero->level_analysis(), nullptr);
  EXPECT_GT(zero->footprint().total_bytes, 0.0);
  EXPECT_GE(zero->analysis_seconds(), 0.0);

  const auto ls = core::SolverPlan::analyze(
      l, core::registry::options_for("gpu-levelset").value());
  ASSERT_TRUE(ls.ok());
  ASSERT_NE(ls->level_analysis(), nullptr);
  EXPECT_EQ(ls->level_analysis()->n, l.rows);
}

}  // namespace
}  // namespace msptrsv
