// End-to-end flows a downstream user would run: file -> factorize -> solve
// on a simulated machine; iterative refinement; capacity planning.
#include <gtest/gtest.h>

#include <sstream>

#include "core/msptrsv.hpp"
#include "support/rng.hpp"

namespace msptrsv {
namespace {

TEST(Integration, MatrixMarketToMultiGpuSolve) {
  // Write a factor to .mtx, read it back, solve on 4 simulated GPUs.
  const sparse::CscMatrix l = sparse::gen_layered_dag(4000, 25, 20000, 0.5, 3);
  std::stringstream file;
  sparse::write_matrix_market(file, l);
  const sparse::CscMatrix loaded =
      sparse::csc_from_coo(sparse::read_matrix_market(file));

  const std::vector<value_t> x_ref = sparse::gen_solution(loaded.rows, 1);
  const std::vector<value_t> b = sparse::gen_rhs_for_solution(loaded, x_ref);

  core::SolveOptions opt;
  opt.backend = core::Backend::kMgZeroCopy;
  opt.machine = sim::Machine::dgx1(4);
  const core::SolveResult r = core::solve(loaded, b, opt);
  EXPECT_LT(core::max_relative_difference(r.x, x_ref), 1e-9);
  EXPECT_GT(r.report.solve_us, 0.0);
}

TEST(Integration, GeneralMatrixThroughIlu0AndBothSubstitutions) {
  // Solve A x = b approximately with one LU sweep: L y = b, U x = y.
  sparse::CooMatrix coo;
  const index_t n = 900;
  coo.rows = coo.cols = n;
  support::Xoshiro256 rng(99);
  for (index_t i = 0; i < n; ++i) {
    coo.add(i, i, 6.0);
    for (int e = 0; e < 4; ++e) {
      const index_t j = static_cast<index_t>(rng.next_below(
          static_cast<std::uint64_t>(n)));
      if (j != i) coo.add(i, j, rng.uniform_real(-0.4, 0.4));
    }
  }
  sparse::CooMatrix dedup = coo;
  dedup.normalize();
  const sparse::CsrMatrix a = sparse::csr_from_coo(std::move(dedup));
  const sparse::CscMatrix a_csc = sparse::csc_from_csr(a);
  const sparse::IluResult f = sparse::ilu0(a);

  const std::vector<value_t> x_true = sparse::gen_solution(n, 5);
  const std::vector<value_t> b = sparse::multiply(a_csc, x_true);

  core::SolveOptions opt;
  opt.backend = core::Backend::kMgZeroCopy;
  opt.machine = sim::Machine::dgx1(2);
  const core::SolveResult fwd = core::solve(f.lower, b, opt);
  const core::SolveResult bwd = core::solve_upper(f.upper, fwd.x, opt);

  // ILU(0) on this pattern is near-exact; the recovered x is close.
  EXPECT_LT(core::max_relative_difference(bwd.x, x_true), 0.2);
  // And L y = b itself is solved to machine precision.
  EXPECT_LT(core::relative_residual(f.lower, fwd.x, b), 1e-11);
}

TEST(Integration, IterativeRefinementConvergesWithSpTrsvKernels) {
  // Richardson iteration preconditioned by ILU(0), using the library's
  // triangular solves -- the "preconditioners of iterative methods" use
  // case from the paper's introduction.
  sparse::CooMatrix coo;
  const index_t nx = 20, ny = 20, n = nx * ny;
  coo.rows = coo.cols = n;
  for (index_t y = 0; y < ny; ++y) {
    for (index_t x = 0; x < nx; ++x) {
      const index_t i = y * nx + x;
      coo.add(i, i, 4.0);
      if (x > 0) { coo.add(i, i - 1, -1.0); coo.add(i - 1, i, -1.0); }
      if (y > 0) { coo.add(i, i - nx, -1.0); coo.add(i - nx, i, -1.0); }
    }
  }
  const sparse::CsrMatrix a = sparse::csr_from_coo(std::move(coo));
  const sparse::CscMatrix a_csc = sparse::csc_from_csr(a);
  const sparse::IluResult f = sparse::ilu0(a);

  const std::vector<value_t> x_true = sparse::gen_solution(n, 8);
  const std::vector<value_t> b = sparse::multiply(a_csc, x_true);

  std::vector<value_t> x(static_cast<std::size_t>(n), 0.0);
  value_t residual = 0.0;
  for (int it = 0; it < 400; ++it) {
    std::vector<value_t> ax = sparse::multiply(a_csc, x);
    std::vector<value_t> r(static_cast<std::size_t>(n));
    residual = 0.0;
    for (std::size_t i = 0; i < r.size(); ++i) {
      r[i] = b[i] - ax[i];
      residual = std::max(residual, std::abs(r[i]));
    }
    if (residual < 1e-10) break;
    const std::vector<value_t> y = core::solve_lower_serial(f.lower, r);
    const std::vector<value_t> dx = core::solve_upper_serial(f.upper, y);
    for (std::size_t i = 0; i < x.size(); ++i) x[i] += dx[i];
  }
  EXPECT_LT(residual, 1e-10);
  EXPECT_LT(core::max_relative_difference(x, x_true), 1e-7);
}

TEST(Integration, OutOfCoreCapacityPlanning) {
  // The paper-scale twitter7 does not fit one 16 GB V100 once the
  // symmetric-heap state is accounted; the capacity model must say so.
  const sparse::SuiteMatrix m = sparse::generate_suite_matrix("twitter7", 8000);
  const double inv_scale = 1.0 / m.scale;
  const sparse::Partition p1 = sparse::Partition::block(m.lower.rows, 1);
  const sparse::FootprintEstimate paper_scale = sparse::estimate_footprint(
      m.lower, p1, sparse::StateLayout::kSymmetricHeap, inv_scale, inv_scale);
  const sim::Machine machine = sim::Machine::dgx1(8);
  // The direct-solver pipeline holds the original matrix (21.6 GB input)
  // alongside both LU factors and factorization workspace (the paper
  // decomposes on the node before solving); ~2.5x the lower-factor bytes
  // is a conservative pipeline footprint.
  const double pipeline_bytes = 2.5 * (paper_scale.total_bytes -
                                       paper_scale.replicated_state_bytes);
  const int needed = sim::min_gpus_for_footprint(
      pipeline_bytes, paper_scale.replicated_state_bytes,
      machine.gpu.memory_bytes, 8);
  EXPECT_GT(needed, 1);
  EXPECT_LE(needed, 8);
  // And the small generated analog itself fits a single tracked GPU.
  sim::MemoryTracker tracker(1, machine.gpu.memory_bytes);
  const sparse::FootprintEstimate small = sparse::estimate_footprint(
      m.lower, p1, sparse::StateLayout::kSymmetricHeap);
  EXPECT_NO_THROW(tracker.allocate(0, small.bytes_per_gpu[0], "analog"));
}

TEST(Integration, ReportSummariesAreHumanReadable) {
  const sparse::CscMatrix l = sparse::gen_layered_dag(3000, 20, 15000, 0.3, 2);
  const std::vector<value_t> b =
      sparse::gen_rhs_for_solution(l, sparse::gen_solution(l.rows, 6));
  core::SolveOptions opt;
  opt.backend = core::Backend::kMgUnified;
  opt.machine = sim::Machine::dgx1(4);
  const core::SolveResult r = core::solve(l, b, opt);
  const std::string s = r.report.summary();
  EXPECT_NE(s.find("mg-unified"), std::string::npos);
  EXPECT_NE(s.find("unified memory"), std::string::npos);
  EXPECT_NE(s.find("interconnect"), std::string::npos);
}

}  // namespace
}  // namespace msptrsv
