// Interconnect timing and accounting.
#include <gtest/gtest.h>

#include "sim/interconnect.hpp"
#include "support/contracts.hpp"

namespace msptrsv::sim {
namespace {

TEST(Interconnect, TransferPaysLatencyAndSerialization) {
  const Topology t = Topology::dgx1(2);
  const CostModel cost;
  Interconnect net(t, cost);
  // 0-1 is a single 25 GB/s link: 25000 bytes take 1 us + 1 hop latency.
  const sim_time_t done = net.transfer(0, 1, 25000.0, 10.0);
  EXPECT_NEAR(done, 10.0 + 1.0 + cost.hop_latency_us, 1e-9);
}

TEST(Interconnect, TwoHopRouteCostsTwoLatencies) {
  const Topology t = Topology::dgx1(8);
  const CostModel cost;
  Interconnect net(t, cost);
  const sim_time_t one = net.transfer(0, 4, 100.0, 0.0);   // direct
  const sim_time_t two = net.transfer(0, 5, 100.0, 0.0);   // 2 hops
  EXPECT_GT(two, one);
  EXPECT_NEAR(two - one,
              cost.hop_latency_us - 100.0 / bytes_per_us(50.0) +
                  100.0 / bytes_per_us(25.0),
              1e-6);
}

TEST(Interconnect, LocalTransferIsFree) {
  const Topology t = Topology::dgx1(4);
  const CostModel cost;
  Interconnect net(t, cost);
  EXPECT_DOUBLE_EQ(net.transfer(2, 2, 1e9, 5.0), 5.0);
  EXPECT_EQ(net.total_messages(), 0u);
}

TEST(Interconnect, StatsAccumulatePerLink) {
  const Topology t = Topology::dgx1(2);
  const CostModel cost;
  Interconnect net(t, cost);
  net.transfer(0, 1, 1000.0, 0.0);
  net.transfer(0, 1, 500.0, 0.0);
  net.transfer(1, 0, 200.0, 0.0);
  EXPECT_DOUBLE_EQ(net.total_bytes(), 1700.0);
  EXPECT_EQ(net.total_messages(), 3u);
  // Directional: the 0->1 link carries 1500 bytes.
  double max_link_bytes = 0.0;
  for (const LinkStats& s : net.all_link_stats()) {
    max_link_bytes = std::max(max_link_bytes, s.bytes);
  }
  EXPECT_DOUBLE_EQ(max_link_bytes, 1500.0);
}

TEST(Interconnect, UncontendedLatencyMatchesTransferTiming) {
  const Topology t = Topology::dgx2(8);
  const CostModel cost;
  Interconnect net(t, cost);
  const sim_time_t est = net.uncontended_latency(3, 6, 4096.0);
  const sim_time_t real = net.transfer(3, 6, 4096.0, 0.0);
  EXPECT_NEAR(est, real, 1e-9);
}

TEST(Interconnect, ResetClearsStats) {
  const Topology t = Topology::dgx1(4);
  const CostModel cost;
  Interconnect net(t, cost);
  net.transfer(0, 1, 1000.0, 0.0);
  net.reset();
  EXPECT_DOUBLE_EQ(net.total_bytes(), 0.0);
  EXPECT_EQ(net.total_messages(), 0u);
}

TEST(Interconnect, NegativeBytesRejected) {
  const Topology t = Topology::dgx1(2);
  const CostModel cost;
  Interconnect net(t, cost);
  EXPECT_THROW(net.transfer(0, 1, -1.0, 0.0), support::PreconditionError);
}

TEST(Interconnect, Dgx2SlightlySlowerLatencyButFasterBandwidthThanDgx1) {
  const CostModel cost;
  const Topology d1 = Topology::dgx1(4);
  const Topology d2 = Topology::dgx2(4);
  Interconnect n1(d1, cost), n2(d2, cost);
  // Small message: DGX-2 pays two port traversals (switch) vs one direct
  // NVLink hop on the DGX-1 quad.
  EXPECT_GT(n2.uncontended_latency(0, 1, 8.0),
            n1.uncontended_latency(0, 1, 8.0));
  // Large message: DGX-2's fat ports win.
  EXPECT_LT(n2.uncontended_latency(0, 1, 4.0e6),
            n1.uncontended_latency(0, 1, 4.0e6));
}

}  // namespace
}  // namespace msptrsv::sim
