// Component distribution: block partition, round-robin task pool, remote
// update counting, and memory footprint estimation.
#include <gtest/gtest.h>

#include "sparse/generators.hpp"
#include "sparse/partition.hpp"
#include "support/contracts.hpp"

namespace msptrsv::sparse {
namespace {

TEST(Partition, BlockCoversEveryComponentOnce) {
  const Partition p = Partition::block(1003, 4);
  index_t total = 0;
  for (int g = 0; g < 4; ++g) total += p.components_on(g);
  EXPECT_EQ(total, 1003);
  EXPECT_EQ(p.num_tasks(), 4);
  // Ownership is contiguous ascending.
  EXPECT_EQ(p.owner_of(0), 0);
  EXPECT_EQ(p.owner_of(1002), 3);
  for (index_t i = 1; i < 1003; ++i) {
    EXPECT_GE(p.owner_of(i), p.owner_of(i - 1));
  }
}

TEST(Partition, RoundRobinDealsTasksCyclically) {
  const Partition p = Partition::round_robin_tasks(1200, 3, 4);
  EXPECT_EQ(p.num_tasks(), 12);
  for (int t = 0; t < 12; ++t) {
    EXPECT_EQ(p.task(t).gpu, t % 3);
    EXPECT_EQ(p.task(t).seq_on_gpu, t / 3);
  }
}

TEST(Partition, TasksAreEquallySized) {
  const Partition p = Partition::round_robin_tasks(1000, 4, 8);
  for (int t = 0; t < p.num_tasks(); ++t) {
    const index_t sz = p.task(t).size();
    EXPECT_GE(sz, 1000 / 32);
    EXPECT_LE(sz, 1000 / 32 + 1);
  }
}

TEST(Partition, ComponentBalanceIsNearPerfect) {
  const Partition block = Partition::block(99991, 8);
  EXPECT_LT(block.component_imbalance(), 1.001);
  const Partition rr = Partition::round_robin_tasks(99991, 8, 16);
  EXPECT_LT(rr.component_imbalance(), 1.001);
}

TEST(Partition, MoreTasksThanComponentsClamps) {
  const Partition p = Partition::round_robin_tasks(5, 4, 8);
  EXPECT_EQ(p.num_tasks(), 5);
  index_t total = 0;
  for (int g = 0; g < 4; ++g) total += p.components_on(g);
  EXPECT_EQ(total, 5);
}

TEST(Partition, SingleGpuOwnsEverything) {
  const Partition p = Partition::block(100, 1);
  for (index_t i = 0; i < 100; ++i) EXPECT_EQ(p.owner_of(i), 0);
}

TEST(Partition, RejectsBadArguments) {
  EXPECT_THROW(Partition::block(0, 2), support::PreconditionError);
  EXPECT_THROW(Partition::block(10, 0), support::PreconditionError);
  EXPECT_THROW(Partition::round_robin_tasks(10, 2, 0),
               support::PreconditionError);
}

TEST(Partition, RemoteUpdateCountIsZeroOnOneGpu) {
  const CscMatrix m = gen_layered_dag(2000, 20, 10000, 0.3, 3);
  EXPECT_EQ(Partition::block(m.rows, 1).count_remote_updates(m), 0);
}

TEST(Partition, RoundRobinTasksIncreaseRemoteUpdates) {
  // Splitting locality-heavy structure round-robin crosses GPU boundaries
  // far more often than contiguous blocks -- the task model's cost side.
  const CscMatrix m = gen_layered_dag(8000, 40, 40000, 0.9, 7);
  const offset_t block = Partition::block(m.rows, 4).count_remote_updates(m);
  const offset_t rr =
      Partition::round_robin_tasks(m.rows, 4, 16).count_remote_updates(m);
  EXPECT_GT(rr, block);
}

TEST(Partition, RemoteUpdatesGrowWithGpuCount) {
  const CscMatrix m = gen_layered_dag(8000, 40, 40000, 0.5, 9);
  const offset_t g2 = Partition::block(m.rows, 2).count_remote_updates(m);
  const offset_t g4 = Partition::block(m.rows, 4).count_remote_updates(m);
  const offset_t g8 = Partition::block(m.rows, 8).count_remote_updates(m);
  EXPECT_LT(g2, g4);
  EXPECT_LT(g4, g8);
}

TEST(Footprint, SymmetricHeapReplicatesStateOnEveryPe) {
  const CscMatrix m = gen_layered_dag(4000, 20, 20000, 0.5, 5);
  const Partition p = Partition::block(m.rows, 4);
  const FootprintEstimate shmem =
      estimate_footprint(m, p, StateLayout::kSymmetricHeap);
  const FootprintEstimate unified =
      estimate_footprint(m, p, StateLayout::kUnifiedManaged);
  // 4 PEs replicate the n-sized arrays; managed memory holds one copy.
  EXPECT_NEAR(shmem.replicated_state_bytes,
              4.0 * unified.replicated_state_bytes, 1.0);
  EXPECT_GT(shmem.total_bytes, unified.total_bytes);
}

TEST(Footprint, ScalesInflateTowardPaperSizes) {
  const CscMatrix m = gen_layered_dag(4000, 20, 20000, 0.5, 5);
  const Partition p = Partition::block(m.rows, 4);
  const FootprintEstimate base =
      estimate_footprint(m, p, StateLayout::kSymmetricHeap);
  const FootprintEstimate scaled =
      estimate_footprint(m, p, StateLayout::kSymmetricHeap, 100.0, 120.0);
  EXPECT_GT(scaled.total_bytes, 90.0 * base.total_bytes);
  EXPECT_THROW(
      estimate_footprint(m, p, StateLayout::kSymmetricHeap, 0.5, 1.0),
      support::PreconditionError);
}

}  // namespace
}  // namespace msptrsv::sparse
