// The network tier's contract, tested at three layers:
//
//  * FRAMES: every frame type round-trips encode -> peek -> decode; a
//    corrupt CRC, truncated image, trailing garbage, unknown type, or
//    out-of-range field is a typed kProtocolError -- never a crash, never
//    a partially-trusted value;
//  * LOOPBACK: a real SolveServer on 127.0.0.1 answers solves BIT-FOR-BIT
//    equal to direct plan.solve_batch; plan opens deduplicate by content
//    across connections; all three open modes (matrix upload, plan blob,
//    hash reference against the shared blob directory) resolve; hostile
//    byte streams fail-stop one connection while the next is served
//    normally; injected kOverloaded drives the client's deterministic
//    retry/backoff tier, and non-retryable statuses come back on the
//    FIRST attempt;
//  * FLEET: a plan-hash Router over two live server processes gives every
//    factor a home shard, both shards take traffic on a mixed workload,
//    and fleet stats merge (counters add, histograms merge).
//
// Everything runs under the same ASan/UBSan CI config as the rest of the
// suite -- the fuzz cases double as memory-safety tests of the frame
// decoder.
#include <gtest/gtest.h>

#include <array>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <future>
#include <random>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/msptrsv.hpp"
#include "net/client.hpp"
#include "net/metrics.hpp"
#include "net/router.hpp"
#include "net/server.hpp"
#include "service/latency_histogram.hpp"

namespace msptrsv {
namespace {

using core::SolveStatus;
using net::FrameHead;
using net::FrameType;
using net::SolveClient;
using net::SolveServer;
using net::WireStats;
using service::LatencyHistogram;

sparse::CscMatrix net_matrix(std::uint64_t seed, index_t n = 400) {
  return sparse::gen_layered_dag(n, 14, 6 * n, 0.5, seed);
}

std::vector<value_t> rhs_for(const sparse::CscMatrix& l, std::uint64_t seed) {
  return sparse::gen_rhs_for_solution(l, sparse::gen_solution(l.rows, seed));
}

/// The blob image of an encoded frame (the wire bytes minus the u32
/// length prefix) -- what peek_frame consumes.
std::vector<std::uint8_t> blob_of(const std::vector<std::uint8_t>& wire) {
  return {wire.begin() + 4, wire.end()};
}

// ---- frame layer -----------------------------------------------------------

TEST(NetProtocol, HelloRoundTrip) {
  net::HelloFrame f;
  f.request_id = 42;
  f.min_version = 1;
  f.max_version = 3;
  f.client_name = "round-trip";
  const auto blob = blob_of(net::encode_hello(f));

  auto head = net::peek_frame(blob);
  ASSERT_TRUE(head.ok()) << head.message();
  EXPECT_EQ(head.value().type, FrameType::kHello);
  EXPECT_EQ(head.value().request_id, 42u);
  const auto back = net::decode_hello(head.value());
  ASSERT_TRUE(back.ok()) << back.message();
  EXPECT_EQ(back.value().min_version, 1);
  EXPECT_EQ(back.value().max_version, 3);
  EXPECT_EQ(back.value().client_name, "round-trip");
}

TEST(NetProtocol, OpenPlanMatrixRoundTrip) {
  net::OpenPlanFrame f;
  f.request_id = 7;
  f.mode = net::OpenMode::kMatrix;
  f.backend_key = "cpu-syncfree";
  f.matrix = net_matrix(3);
  const auto blob = blob_of(net::encode_open_plan(f));

  auto head = net::peek_frame(blob);
  ASSERT_TRUE(head.ok());
  const auto back = net::decode_open_plan(head.value());
  ASSERT_TRUE(back.ok()) << back.message();
  EXPECT_EQ(back.value().mode, net::OpenMode::kMatrix);
  EXPECT_EQ(back.value().backend_key, "cpu-syncfree");
  EXPECT_EQ(back.value().matrix.col_ptr, f.matrix.col_ptr);
  EXPECT_EQ(back.value().matrix.row_idx, f.matrix.row_idx);
  EXPECT_EQ(back.value().matrix.val, f.matrix.val);
}

TEST(NetProtocol, SolveRoundTripKeepsPriorityDeadlineAndBits) {
  net::SolveFrame f;
  f.request_id = 9;
  f.plan_id = 5;
  f.num_rhs = 2;
  f.priority = service::Priority::kHigh;
  f.deadline_us = 50000;
  f.rhs = {1.5, -2.25, 3.0, 0.0625};
  const auto blob = blob_of(net::encode_solve(f));

  auto head = net::peek_frame(blob);
  ASSERT_TRUE(head.ok());
  const auto back = net::decode_solve(head.value());
  ASSERT_TRUE(back.ok()) << back.message();
  EXPECT_EQ(back.value().plan_id, 5u);
  EXPECT_EQ(back.value().num_rhs, 2);
  EXPECT_EQ(back.value().priority, service::Priority::kHigh);
  EXPECT_EQ(back.value().deadline_us, 50000u);
  EXPECT_EQ(back.value().rhs, f.rhs);  // bit-for-bit through the wire
}

TEST(NetProtocol, ErrorRoundTripCarriesTypedStatus) {
  net::ErrorFrame f;
  f.request_id = 11;
  f.status = SolveStatus::kOverloaded;
  f.message = "queue full";
  const auto blob = blob_of(net::encode_error(f));

  auto head = net::peek_frame(blob);
  ASSERT_TRUE(head.ok());
  const auto back = net::decode_error(head.value());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().status, SolveStatus::kOverloaded);
  EXPECT_EQ(back.value().message, "queue full");
}

TEST(NetProtocol, StatsOkBinaryRoundTripMergesHistograms) {
  LatencyHistogram hist;
  for (int i = 1; i <= 1000; ++i) hist.record(static_cast<double>(i));

  net::StatsOkFrame f;
  f.request_id = 13;
  f.format = net::StatsFormat::kBinary;
  f.stats.submitted = 1000;
  f.stats.completed = 990;
  f.stats.shed = 10;
  f.stats.peak_queue_depth = 77;
  f.stats.latency = hist.snapshot();
  f.stats.per_class[0].completed = 500;
  f.stats.per_class[0].latency = hist.snapshot();
  const auto blob = blob_of(net::encode_stats_ok(f));

  auto head = net::peek_frame(blob);
  ASSERT_TRUE(head.ok());
  const auto back = net::decode_stats_ok(head.value());
  ASSERT_TRUE(back.ok()) << back.message();
  EXPECT_EQ(back.value().stats.completed, 990u);
  EXPECT_EQ(back.value().stats.latency.count, 1000u);
  EXPECT_EQ(back.value().stats.latency.counts, f.stats.latency.counts);
  EXPECT_EQ(back.value().stats.per_class[0].latency.count, 1000u);
  EXPECT_DOUBLE_EQ(back.value().stats.latency.quantile(0.5),
                   f.stats.latency.quantile(0.5));
}

TEST(NetProtocol, CorruptCrcIsProtocolError) {
  auto blob = blob_of(net::encode_drain({21}));
  blob.back() ^= 0xFF;  // CRC trailer
  const auto head = net::peek_frame(blob);
  ASSERT_FALSE(head.ok());
  EXPECT_EQ(head.status(), SolveStatus::kProtocolError);
}

TEST(NetProtocol, TruncatedBlobIsProtocolError) {
  const auto blob = blob_of(net::encode_hello({1, 1, 1, "x"}));
  for (std::size_t len = 0; len < blob.size(); ++len) {
    const auto head = net::peek_frame(
        std::span<const std::uint8_t>(blob.data(), len));
    EXPECT_FALSE(head.ok()) << "accepted a " << len << "-byte prefix";
  }
}

TEST(NetProtocol, TrailingGarbageIsProtocolError) {
  // A drain-ok image handed to the drain decoder leaves its u64 payload
  // unconsumed -- the decoder must treat leftover bytes as a violation.
  const auto blob = blob_of(net::encode_drain_ok({3, 12345}));
  auto head = net::peek_frame(blob);
  ASSERT_TRUE(head.ok());
  const auto back = net::decode_drain(head.value());
  ASSERT_FALSE(back.ok());
  EXPECT_EQ(back.status(), SolveStatus::kProtocolError);
  EXPECT_FALSE(head.value().reader.ok());  // latched: connection fail-stops
}

TEST(NetProtocol, UnknownFrameTypeIsProtocolError) {
  support::BlobWriter w(net::kProtocolVersion);
  w.write_u8(99);  // not a FrameType
  w.write_u64(1);
  const auto blob = std::move(w).finish();
  const auto head = net::peek_frame(blob);
  ASSERT_FALSE(head.ok());
  EXPECT_EQ(head.status(), SolveStatus::kProtocolError);
}

TEST(NetProtocol, OutOfRangePriorityIsProtocolError) {
  support::BlobWriter w(net::kProtocolVersion);
  w.write_u8(static_cast<std::uint8_t>(FrameType::kSolve));
  w.write_u64(1);
  w.write_u64(1);  // plan_id
  w.write_i32(1);  // num_rhs
  w.write_u8(7);   // priority: out of range
  w.write_u64(0);  // deadline
  w.write_span<value_t>(std::vector<value_t>{1.0});
  const auto blob = std::move(w).finish();
  auto head = net::peek_frame(blob);
  ASSERT_TRUE(head.ok());
  const auto back = net::decode_solve(head.value());
  ASSERT_FALSE(back.ok());
  EXPECT_EQ(back.status(), SolveStatus::kProtocolError);
}

TEST(NetProtocol, DeterministicMutationFuzzPersistsSurvivors) {
  // Seeded mutation fuzz over the frame decoder: flip a few bytes of
  // valid frames and require a fail-stop outcome -- a typed protocol
  // error or a clean decode (a mutation can land in a don't-care byte or
  // produce another valid value), never a crash or unchecked allocation.
  //
  // Mutants that SURVIVE full decoding despite the mutation are the
  // interesting ones: they exercised a path the hand-written corpus seeds
  // do not pin down, so they are persisted (deterministically named by
  // content hash) into tests/corpus/ where test_corpus replays them on
  // every future run.
  const auto decodes = [](std::span<const std::uint8_t> bytes) {
    auto head = net::peek_frame(bytes);
    if (!head.ok()) return false;
    FrameHead& h = head.value();
    switch (h.type) {
      case FrameType::kHello: return net::decode_hello(h).ok();
      case FrameType::kHelloOk: return net::decode_hello_ok(h).ok();
      case FrameType::kOpenPlan: return net::decode_open_plan(h).ok();
      case FrameType::kOpenOk: return net::decode_open_ok(h).ok();
      case FrameType::kSolve: return net::decode_solve(h).ok();
      case FrameType::kSolveOk: return net::decode_solve_ok(h).ok();
      case FrameType::kError: return net::decode_error(h).ok();
      case FrameType::kStats: return net::decode_stats(h).ok();
      case FrameType::kStatsOk: return net::decode_stats_ok(h).ok();
      case FrameType::kDrain: return net::decode_drain(h).ok();
      case FrameType::kDrainOk: return net::decode_drain_ok(h).ok();
      case FrameType::kPing: return net::decode_ping(h).ok();
      case FrameType::kPong: return net::decode_pong(h).ok();
      case FrameType::kFailpoint: return net::decode_failpoint(h).ok();
      case FrameType::kFailpointOk: return net::decode_failpoint_ok(h).ok();
      case FrameType::kTraceDump: return net::decode_trace_dump(h).ok();
      case FrameType::kTraceDumpOk: return net::decode_trace_dump_ok(h).ok();
    }
    return false;
  };

  std::vector<std::vector<std::uint8_t>> seeds;
  {
    net::HelloFrame hello;
    hello.request_id = 1;
    hello.client_name = "fuzz";
    seeds.push_back(blob_of(net::encode_hello(hello)));
    net::SolveFrame solve;
    solve.request_id = 2;
    solve.plan_id = 1;
    solve.num_rhs = 2;
    solve.rhs = {1.0, 2.0, 3.0, 4.0};
    seeds.push_back(blob_of(net::encode_solve(solve)));
    net::OpenPlanFrame open;
    open.request_id = 3;
    open.mode = net::OpenMode::kMatrix;
    open.backend_key = "serial";
    open.matrix = sparse::gen_chain(6);
    seeds.push_back(blob_of(net::encode_open_plan(open)));
    net::ErrorFrame err;
    err.request_id = 4;
    err.status = SolveStatus::kOverloaded;
    err.message = "fuzz";
    seeds.push_back(blob_of(net::encode_error(err)));
    net::PingFrame ping;
    ping.request_id = 5;
    seeds.push_back(blob_of(net::encode_ping(ping)));
  }

  std::filesystem::create_directories(MSPTRSV_CORPUS_DIR);

  // Fixed generator seed: the mutant set -- and therefore the persisted
  // survivor set -- is identical on every run and every machine.
  //
  // Mutations land in the PAYLOAD (bytes 8..size-4) and the CRC trailer
  // is resealed afterwards: an unsealed flip is always caught by the CRC
  // check (its own corpus seeds pin that), while a resealed one reaches
  // the type decoders -- the validation layer this fuzz targets.
  std::mt19937_64 rng(0x5EEDC0DE);
  std::size_t survivors = 0, rejected = 0;
  for (const std::vector<std::uint8_t>& seed : seeds) {
    const std::size_t payload = seed.size() - 8 - 4;
    ASSERT_GT(payload, 0u);
    // Persist a bounded, deterministic sample per seed (the first few in
    // generation order): enough to pin the surviving shapes in the replay
    // corpus without drowning it in near-duplicate mutants.
    int persisted = 0;
    for (int iter = 0; iter < 400; ++iter) {
      std::vector<std::uint8_t> m = seed;
      const int flips = 1 + static_cast<int>(rng() % 4);
      for (int f = 0; f < flips; ++f) {
        m[8 + rng() % payload] ^=
            static_cast<std::uint8_t>(1u << (rng() % 8));
      }
      if (m == seed) continue;
      const std::uint32_t crc = support::crc32(
          std::span<const std::uint8_t>(m).subspan(8, payload));
      std::memcpy(m.data() + m.size() - 4, &crc, sizeof(crc));
      if (!decodes(m)) {
        ++rejected;
        continue;
      }
      ++survivors;
      if (persisted >= 4) continue;
      ++persisted;
      // FNV-1a content hash for a stable, collision-resistant-enough name.
      std::uint64_t h = 1469598103934665603ull;
      for (std::uint8_t byte : m) h = (h ^ byte) * 1099511628211ull;
      char hex[17];
      std::snprintf(hex, sizeof hex, "%016llx",
                    static_cast<unsigned long long>(h));
      const std::string path =
          std::string(MSPTRSV_CORPUS_DIR) + "/frame_ok_fuzz_" + hex + ".bin";
      ASSERT_TRUE(support::write_file(path, m)) << path;
    }
  }
  // The decoder must be doing real validation (most mutants die), and the
  // sweep must be reaching the survivor-persistence path.
  EXPECT_GT(rejected, 0u);
  EXPECT_GT(survivors, 0u);
}

TEST(NetProtocol, WireStatsMergeAddsCountersAndHistograms) {
  LatencyHistogram ha, hb;
  ha.record(100);
  ha.record(200);
  hb.record(400);

  WireStats a, b;
  a.completed = 2;
  a.queue_depth = 3;
  a.peak_queue_depth = 9;
  a.latency = ha.snapshot();
  b.completed = 1;
  b.queue_depth = 4;
  b.peak_queue_depth = 5;
  b.latency = hb.snapshot();

  a.merge(b);
  EXPECT_EQ(a.completed, 3u);
  EXPECT_EQ(a.queue_depth, 7u);       // gauges of disjoint shards: sum
  EXPECT_EQ(a.peak_queue_depth, 9u);  // peaks do not add: max
  EXPECT_EQ(a.latency.count, 3u);
  EXPECT_EQ(a.latency.sum_us, 700u);
}

// ---- latency histogram -----------------------------------------------------

TEST(LatencyHistogram, BucketsAreContiguousAndMonotonic) {
  // Every integer edge maps into a bucket whose [floor, ceil] contains it,
  // and bucket indexes never decrease as values grow.
  std::size_t prev = 0;
  for (std::uint64_t us : {0ull, 1ull, 31ull, 32ull, 63ull, 64ull, 65ull,
                           1000ull, 4096ull, 1000000ull, 1ull << 40}) {
    const std::size_t idx = LatencyHistogram::index_of(us);
    EXPECT_GE(idx, prev);
    EXPECT_LE(LatencyHistogram::bucket_floor(idx), us);
    EXPECT_GE(LatencyHistogram::bucket_ceil(idx), us);
    prev = idx;
  }
}

TEST(LatencyHistogram, QuantileHasBoundedRelativeError) {
  LatencyHistogram hist;
  for (int i = 1; i <= 100000; ++i) hist.record(static_cast<double>(i));
  const auto snap = hist.snapshot();
  EXPECT_EQ(snap.count, 100000u);
  for (double q : {0.10, 0.50, 0.90, 0.99}) {
    const double want = q * 100000.0;
    const double got = snap.quantile(q);
    // The bucket edge is within one sub-bucket (1/32 ~ 3.2%) of the truth.
    EXPECT_NEAR(got, want, want * 0.04) << "q=" << q;
  }
  EXPECT_NEAR(snap.mean_us(), 50000.5, 100.0);
}

TEST(LatencyHistogram, MergeEqualsCombinedRecording) {
  LatencyHistogram a, b, both;
  for (int i = 1; i <= 500; ++i) {
    a.record(static_cast<double>(i));
    both.record(static_cast<double>(i));
  }
  for (int i = 1000; i <= 2000; ++i) {
    b.record(static_cast<double>(i));
    both.record(static_cast<double>(i));
  }
  auto merged = a.snapshot();
  merged.merge(b.snapshot());
  const auto want = both.snapshot();
  EXPECT_EQ(merged.count, want.count);
  EXPECT_EQ(merged.sum_us, want.sum_us);
  EXPECT_EQ(merged.counts, want.counts);
}

// ---- loopback server -------------------------------------------------------

TEST(NetLoopback, ServedSolveIsBitForBitEqualToDirect) {
  SolveServer server;
  ASSERT_TRUE(server.start().ok());

  const sparse::CscMatrix l = net_matrix(17);
  const std::vector<value_t> b = rhs_for(l, 1);

  net::ClientOptions copt;
  copt.port = server.port();
  SolveClient client(copt);
  const auto handle = client.open(l, "cpu-syncfree");
  ASSERT_TRUE(handle.ok()) << handle.message();
  EXPECT_EQ(handle.value().rows, l.rows);

  const auto direct = server.service().plan_for(l, "cpu-syncfree");
  ASSERT_TRUE(direct.ok());
  const std::vector<value_t> want = direct->solve(b).value().x;

  const auto x = client.solve(handle.value(), b);
  ASSERT_TRUE(x.ok()) << x.message();
  EXPECT_EQ(x.value(), want);

  // Batch path: 3 rhs fused, still bit-for-bit.
  std::vector<value_t> rhs;
  for (std::uint64_t s : {2u, 3u, 4u}) {
    const auto col = rhs_for(l, s);
    rhs.insert(rhs.end(), col.begin(), col.end());
  }
  const std::vector<value_t> want_batch =
      direct->solve_batch(rhs, 3).value().x;
  const auto xb = client.solve_batch(handle.value(), rhs, 3);
  ASSERT_TRUE(xb.ok()) << xb.message();
  EXPECT_EQ(xb.value(), want_batch);

  server.stop();
}

TEST(NetLoopback, OpensDeduplicateByContentAcrossConnections) {
  SolveServer server;
  ASSERT_TRUE(server.start().ok());
  const sparse::CscMatrix l = net_matrix(23);

  net::ClientOptions copt;
  copt.port = server.port();
  SolveClient a(copt), b(copt);
  const auto first = a.open(l, "cpu-syncfree");
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first.value().source, "cache");  // analyzed on first use
  const auto second = b.open(l, "cpu-syncfree");
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.value().source, "open");  // deduped against a's open
  EXPECT_EQ(server.wire_stats().plans_open, 1u);
  server.stop();
}

TEST(NetLoopback, PlanBlobUploadSkipsServerAnalysis) {
  SolveServer server;
  ASSERT_TRUE(server.start().ok());
  const sparse::CscMatrix l = net_matrix(29);

  const auto options = core::registry::service_options("cpu-syncfree");
  ASSERT_TRUE(options.ok());
  const auto plan = core::SolverPlan::analyze(l, options.value());
  ASSERT_TRUE(plan.ok());
  auto blob = plan.value().serialize();
  ASSERT_TRUE(blob.ok());

  net::ClientOptions copt;
  copt.port = server.port();
  SolveClient client(copt);
  const auto handle =
      client.open_plan_blob(std::move(blob.value()), "cpu-syncfree");
  ASSERT_TRUE(handle.ok()) << handle.message();
  EXPECT_EQ(handle.value().source, "deserialized");

  const std::vector<value_t> b = rhs_for(l, 1);
  const std::vector<value_t> want = plan.value().solve(b).value().x;
  const auto x = client.solve(handle.value(), b);
  ASSERT_TRUE(x.ok());
  EXPECT_EQ(x.value(), want);
  server.stop();
}

TEST(NetLoopback, HashRefResolvesAgainstSharedBlobDirectory) {
  const std::string dir =
      ::testing::TempDir() + "net_warm_tier_" +
      std::to_string(
          std::chrono::steady_clock::now().time_since_epoch().count());
  std::filesystem::create_directories(dir);
  const sparse::CscMatrix l = net_matrix(31);
  const sparse::StructuralHash hash = sparse::hash_csc(l);

  // Server A analyzes the factor; its cache_dir persists the plan blob.
  {
    net::ServerOptions sopt;
    sopt.service.cache_dir = dir;
    SolveServer a(sopt);
    ASSERT_TRUE(a.start().ok());
    net::ClientOptions copt;
    copt.port = a.port();
    SolveClient client(copt);
    ASSERT_TRUE(client.open(l, "cpu-syncfree").ok());
    a.stop();
  }

  // Server B never saw the matrix: a hash-ref open is a DISK hit against
  // the shared directory -- the fleet-wide warm tier.
  net::ServerOptions sopt;
  sopt.service.cache_dir = dir;
  SolveServer bsrv(sopt);
  ASSERT_TRUE(bsrv.start().ok());
  net::ClientOptions copt;
  copt.port = bsrv.port();
  SolveClient client(copt);
  const auto handle = client.open_by_hash(hash, "cpu-syncfree");
  ASSERT_TRUE(handle.ok()) << handle.message();
  EXPECT_EQ(handle.value().source, "disk");

  const std::vector<value_t> b = rhs_for(l, 1);
  const auto direct = bsrv.service().plan_for(l, "cpu-syncfree");
  const auto x = client.solve(handle.value(), b);
  ASSERT_TRUE(x.ok());
  EXPECT_EQ(x.value(), direct->solve(b).value().x);

  // An unknown hash is a typed kBadSnapshot, not a protocol error.
  sparse::StructuralHash unknown = hash;
  unknown.pattern ^= 0xDEADBEEF;
  const auto miss = client.open_by_hash(unknown, "cpu-syncfree");
  ASSERT_FALSE(miss.ok());
  EXPECT_EQ(miss.status(), SolveStatus::kBadSnapshot);

  bsrv.stop();
  std::filesystem::remove_all(dir);
}

/// Sends raw bytes to the server, then verifies the server (a) closed
/// THIS connection and (b) still serves a fresh well-formed client.
void expect_fail_stop(SolveServer& server,
                      const std::vector<std::uint8_t>& raw) {
  const std::uint64_t errors_before = server.wire_stats().protocol_errors;
  auto sock = net::tcp_connect("127.0.0.1", server.port());
  ASSERT_TRUE(sock.ok());
  ASSERT_TRUE(sock.value().send_all(raw).ok());
  // The server answers with a best-effort error frame and/or closes; the
  // read side observing EOF (or an error reply) is the fail-stop signal.
  std::vector<std::uint8_t> sink(4096);
  bool eof = false;
  while (true) {
    const auto got = sock.value().recv_exact(
        std::span<std::uint8_t>(sink.data(), 1), &eof);
    if (!got.ok() || eof) break;
  }
  EXPECT_GT(server.wire_stats().protocol_errors, errors_before);

  // The process shrugged it off: a well-formed client still gets served.
  const sparse::CscMatrix l = net_matrix(37, 200);
  net::ClientOptions copt;
  copt.port = server.port();
  SolveClient client(copt);
  const auto handle = client.open(l, "cpu-syncfree");
  ASSERT_TRUE(handle.ok()) << handle.message();
  const std::vector<value_t> b = rhs_for(l, 1);
  EXPECT_TRUE(client.solve(handle.value(), b).ok());
}

TEST(NetLoopback, MalformedFramesFailStopTheConnectionNotTheProcess) {
  SolveServer server;
  ASSERT_TRUE(server.start().ok());

  const auto with_prefix = [](std::vector<std::uint8_t> blob) {
    const std::uint32_t len = static_cast<std::uint32_t>(blob.size());
    std::vector<std::uint8_t> wire = {
        static_cast<std::uint8_t>(len), static_cast<std::uint8_t>(len >> 8),
        static_cast<std::uint8_t>(len >> 16),
        static_cast<std::uint8_t>(len >> 24)};
    wire.insert(wire.end(), blob.begin(), blob.end());
    return wire;
  };

  // Garbage bytes where a blob image should be.
  expect_fail_stop(server, with_prefix(std::vector<std::uint8_t>(64, 0xAB)));
  // Length prefix larger than the frame bound: rejected BEFORE allocation.
  expect_fail_stop(server, {0xFF, 0xFF, 0xFF, 0xFF});
  // Length prefix smaller than any valid frame.
  expect_fail_stop(server, {0x04, 0x00, 0x00, 0x00, 1, 2, 3, 4});
  // Valid frame with its CRC trailer flipped.
  {
    auto wire = net::encode_drain({1});
    wire.back() ^= 0xFF;
    expect_fail_stop(server, wire);
  }
  // Unknown frame type inside a valid blob.
  {
    support::BlobWriter w(net::kProtocolVersion);
    w.write_u8(200);
    w.write_u64(1);
    expect_fail_stop(server, with_prefix(std::move(w).finish()));
  }
  // A REPLY frame sent to the server.
  expect_fail_stop(server, net::encode_solve_ok({1, 0.0, {1.0}}));
  // Out-of-range priority in an otherwise valid solve frame.
  {
    support::BlobWriter w(net::kProtocolVersion);
    w.write_u8(static_cast<std::uint8_t>(FrameType::kSolve));
    w.write_u64(1);
    w.write_u64(1);
    w.write_i32(1);
    w.write_u8(9);
    w.write_u64(0);
    w.write_span<value_t>(std::vector<value_t>{1.0});
    expect_fail_stop(server, with_prefix(std::move(w).finish()));
  }

  // Truncated body: prefix promises 1000 bytes, the peer hangs up early.
  {
    auto sock = net::tcp_connect("127.0.0.1", server.port());
    ASSERT_TRUE(sock.ok());
    std::vector<std::uint8_t> partial = {0xE8, 0x03, 0x00, 0x00, 1, 2, 3};
    ASSERT_TRUE(sock.value().send_all(partial).ok());
    sock.value().close();
  }
  // Connection-level counters saw every hostile stream.
  EXPECT_GE(server.wire_stats().protocol_errors, 7u);
  server.stop();
}

TEST(NetLoopback, InjectedOverloadDrivesRetryToSuccess) {
  net::ServerOptions sopt;
  sopt.inject_status = SolveStatus::kOverloaded;
  sopt.inject_count = 3;
  SolveServer server(sopt);
  ASSERT_TRUE(server.start().ok());

  const sparse::CscMatrix l = net_matrix(41);
  net::ClientOptions copt;
  copt.port = server.port();
  copt.retry.max_attempts = 4;
  copt.retry.initial_backoff = std::chrono::microseconds(100);
  SolveClient client(copt);
  const auto handle = client.open(l, "cpu-syncfree");
  ASSERT_TRUE(handle.ok());

  const std::vector<value_t> b = rhs_for(l, 1);
  const auto x = client.solve(handle.value(), b);
  ASSERT_TRUE(x.ok()) << x.message();  // 3 injected rejections, then served

  const net::ClientMetrics m = client.metrics_local();
  EXPECT_EQ(m.solves, 1u);
  EXPECT_EQ(m.attempts, 4u);
  EXPECT_EQ(m.retries, 3u);
  EXPECT_GT(m.backoff_us, 0u);
  server.stop();
}

TEST(NetLoopback, RetryExhaustionReturnsOverloaded) {
  net::ServerOptions sopt;
  sopt.inject_status = SolveStatus::kOverloaded;
  sopt.inject_count = 100;
  SolveServer server(sopt);
  ASSERT_TRUE(server.start().ok());

  const sparse::CscMatrix l = net_matrix(43);
  net::ClientOptions copt;
  copt.port = server.port();
  copt.retry.max_attempts = 3;
  copt.retry.initial_backoff = std::chrono::microseconds(100);
  SolveClient client(copt);
  const auto handle = client.open(l, "cpu-syncfree");
  ASSERT_TRUE(handle.ok());

  const auto x = client.solve(handle.value(), rhs_for(l, 1));
  ASSERT_FALSE(x.ok());
  EXPECT_EQ(x.status(), SolveStatus::kOverloaded);
  EXPECT_EQ(client.metrics_local().attempts, 3u);
  server.stop();
}

TEST(NetLoopback, NonRetryableStatusesAreNotRetried) {
  net::ServerOptions sopt;
  sopt.inject_status = SolveStatus::kDeadlineExceeded;
  sopt.inject_count = 1;
  SolveServer server(sopt);
  ASSERT_TRUE(server.start().ok());

  const sparse::CscMatrix l = net_matrix(47);
  net::ClientOptions copt;
  copt.port = server.port();
  SolveClient client(copt);
  const auto handle = client.open(l, "cpu-syncfree");
  ASSERT_TRUE(handle.ok());

  // A shed deadline comes back on the FIRST attempt: re-sending the same
  // doomed deadline would only burn server time.
  const auto x = client.solve(handle.value(), rhs_for(l, 1));
  ASSERT_FALSE(x.ok());
  EXPECT_EQ(x.status(), SolveStatus::kDeadlineExceeded);
  EXPECT_EQ(client.metrics_local().attempts, 1u);
  EXPECT_EQ(client.metrics_local().retries, 0u);

  // Same for a mis-shaped rhs: the server's typed kShapeMismatch comes
  // back immediately -- retrying identical bad input cannot fare better.
  const auto wrong_shape =
      client.solve(handle.value(), std::vector<value_t>(l.rows + 1, 1.0));
  ASSERT_FALSE(wrong_shape.ok());
  EXPECT_EQ(wrong_shape.status(), SolveStatus::kShapeMismatch);
  server.stop();
}

TEST(NetLoopback, DrainCompletesEverythingAdmitted) {
  SolveServer server;
  ASSERT_TRUE(server.start().ok());
  const sparse::CscMatrix l = net_matrix(53);

  net::ClientOptions copt;
  copt.port = server.port();
  SolveClient client(copt);
  const auto handle = client.open(l, "cpu-syncfree");
  ASSERT_TRUE(handle.ok());

  const std::vector<value_t> b = rhs_for(l, 1);
  std::vector<std::future<core::Expected<std::vector<value_t>>>> inflight;
  for (int i = 0; i < 16; ++i) {
    inflight.push_back(client.submit_batch(handle.value(), b, 1));
  }
  const auto drained = client.drain();
  ASSERT_TRUE(drained.ok()) << drained.message();
  // The connection processes frames in order: all 16 solves were admitted
  // before the drain, so the barrier covers every one of them.
  EXPECT_EQ(drained.value(), 16u);
  for (auto& fut : inflight) {
    const auto x = fut.get();
    ASSERT_TRUE(x.ok()) << x.message();
  }
  EXPECT_EQ(server.wire_stats().completed, 16u);
  server.stop();
}

TEST(NetLoopback, PrometheusMetricsRenderTheServedTraffic) {
  SolveServer server;
  ASSERT_TRUE(server.start().ok());
  const sparse::CscMatrix l = net_matrix(59);

  net::ClientOptions copt;
  copt.port = server.port();
  SolveClient client(copt);
  const auto handle = client.open(l, "cpu-syncfree");
  ASSERT_TRUE(handle.ok());
  ASSERT_TRUE(
      client.solve(handle.value(), rhs_for(l, 1), service::Priority::kHigh)
          .ok());

  const auto text = client.metrics();
  ASSERT_TRUE(text.ok());
  const std::string& t = text.value();
  EXPECT_NE(t.find("msptrsv_rhs_completed_total{instance=\"msptrsv\"} 1"),
            std::string::npos);
  EXPECT_NE(t.find("msptrsv_plans_open{instance=\"msptrsv\"} 1"),
            std::string::npos);
  EXPECT_NE(t.find("msptrsv_solve_latency_seconds_bucket"),
            std::string::npos);
  EXPECT_NE(t.find("class=\"high\""), std::string::npos);
  EXPECT_NE(t.find("# TYPE msptrsv_solve_latency_seconds histogram"),
            std::string::npos);

  // The binary stats frame agrees with the text.
  const auto stats = client.stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().completed, 1u);
  EXPECT_EQ(stats.value().per_class[0].completed, 1u);  // kHigh
  server.stop();
}

// ---- router / fleet --------------------------------------------------------

TEST(NetRouter, PlansGetAHomeShardAndBothShardsTakeTraffic) {
  SolveServer s0, s1;
  ASSERT_TRUE(s0.start().ok());
  ASSERT_TRUE(s1.start().ok());

  net::RouterOptions ropt;
  ropt.endpoints = {{"127.0.0.1", s0.port()}, {"127.0.0.1", s1.port()}};
  net::Router router(ropt);
  ASSERT_EQ(router.shard_count(), 2u);

  // Pick factor seeds whose homes COVER both shards. shard_of is pure, so
  // the mixed workload can be chosen by construction instead of hoping a
  // fixed seed set happens to split (ephemeral ports reseed the hash every
  // run).
  std::vector<std::uint64_t> seeds = {100, 101, 102, 103};
  std::set<std::size_t> covered;
  for (const std::uint64_t seed : seeds) {
    covered.insert(
        router.shard_of(sparse::hash_csc(net_matrix(seed, 300)).pattern));
  }
  for (std::uint64_t seed = 104; covered.size() < 2 && seed < 200; ++seed) {
    const std::size_t home =
        router.shard_of(sparse::hash_csc(net_matrix(seed, 300)).pattern);
    if (!covered.count(home)) {
      covered.insert(home);
      seeds.push_back(seed);
    }
  }
  ASSERT_EQ(covered.size(), 2u) << "96 factors all hashed to one shard";

  std::set<std::size_t> shards_used;
  for (const std::uint64_t seed : seeds) {
    const sparse::CscMatrix l = net_matrix(seed, 300);
    const auto routed = router.open(l, "cpu-syncfree");
    ASSERT_TRUE(routed.ok()) << routed.message();
    EXPECT_EQ(routed.value().shard,
              router.shard_of(sparse::hash_csc(l).pattern));
    shards_used.insert(routed.value().shard);

    const std::vector<value_t> b = rhs_for(l, 1);
    const auto x = router.solve(routed.value(), b);
    ASSERT_TRUE(x.ok());
    // Bit-for-bit against a direct plan on the HOME shard's service.
    SolveServer& home = routed.value().shard == 0 ? s0 : s1;
    const auto direct = home.service().plan_for(l, "cpu-syncfree");
    EXPECT_EQ(x.value(), direct->solve(b).value().x);
  }
  EXPECT_EQ(shards_used.size(), 2u);

  // Every plan lives on exactly ONE process.
  const WireStats w0 = s0.wire_stats();
  const WireStats w1 = s1.wire_stats();
  EXPECT_EQ(w0.plans_open + w1.plans_open, seeds.size());
  EXPECT_GT(w0.completed, 0u);
  EXPECT_GT(w1.completed, 0u);

  // Fleet stats merge: counters add across shards, histograms combine.
  std::size_t reachable = 0;
  const auto fleet = router.fleet_stats(&reachable);
  ASSERT_TRUE(fleet.ok());
  EXPECT_EQ(reachable, 2u);
  EXPECT_EQ(fleet.value().completed, w0.completed + w1.completed);
  EXPECT_EQ(fleet.value().latency.count,
            w0.latency.count + w1.latency.count);

  const auto fleet_text = router.fleet_metrics();
  ASSERT_TRUE(fleet_text.ok());
  EXPECT_NE(fleet_text.value().find("instance=\"fleet\""),
            std::string::npos);

  const auto drained = router.drain_all();
  ASSERT_TRUE(drained.ok());
  EXPECT_EQ(drained.value(), w0.completed + w1.completed);

  s0.stop();
  s1.stop();
}

TEST(NetRouter, RendezvousIsStableAndBalancedEnough) {
  net::RouterOptions ropt;
  ropt.endpoints = {{"127.0.0.1", 1111}, {"127.0.0.1", 2222},
                    {"127.0.0.1", 3333}};
  // No live servers needed: shard_of is pure.
  net::Router router(ropt);
  std::array<int, 3> histogram{};
  for (std::uint64_t h = 0; h < 3000; ++h) {
    const std::size_t s = router.shard_of(h * 0x9E3779B97F4A7C15ULL);
    ASSERT_LT(s, 3u);
    EXPECT_EQ(s, router.shard_of(h * 0x9E3779B97F4A7C15ULL));  // stable
    ++histogram[s];
  }
  for (int count : histogram) {
    EXPECT_GT(count, 700);  // ~1000 each; grossly unbalanced = broken mix
    EXPECT_LT(count, 1300);
  }
}

}  // namespace
}  // namespace msptrsv
