// Fuzz regression corpus replay.
//
// tests/corpus/ holds byte-level inputs for the two hardened decoders --
// the wire-frame parser (net::peek_frame + type decoders) and the plan
// blob reader (core::deserialize_snapshot, i.e. support::BlobReader) --
// and this suite replays EVERY file there on every run. The contract is
// fail-stop: each input must produce either a clean decode or a typed
// error; never a crash, a hang, or an unchecked allocation.
//
// The file name carries the expectation:
//   reject_*    -- hostile: both decoders must return a typed error;
//   frame_ok_*  -- must fully decode through the frame path;
//   blob_ok_*   -- must deserialize as a plan snapshot.
//
// The canonical seed files are regenerated (deterministically,
// byte-identical) by the first test, so the corpus is self-healing and
// reviewable; test_net's mutation fuzzer appends surviving mutants as
// frame_ok_fuzz_*.bin, which land in the same replay.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "core/msptrsv.hpp"
#include "net/protocol.hpp"
#include "support/blob.hpp"

#ifndef MSPTRSV_CORPUS_DIR
#error "MSPTRSV_CORPUS_DIR must point at tests/corpus (set by CMake)"
#endif

namespace msptrsv {
namespace {

namespace fs = std::filesystem;

std::string corpus_dir() { return MSPTRSV_CORPUS_DIR; }

void write_corpus(const std::string& name,
                  const std::vector<std::uint8_t>& bytes) {
  ASSERT_TRUE(support::write_file(corpus_dir() + "/" + name, bytes)) << name;
}

std::vector<std::uint8_t> blob_of(const std::vector<std::uint8_t>& wire) {
  return {wire.begin() + 4, wire.end()};
}

std::vector<std::uint8_t> valid_hello_blob() {
  net::HelloFrame f;
  f.request_id = 7;
  f.client_name = "corpus-seed";
  return blob_of(net::encode_hello(f));
}

/// Full frame decode: peek, then the type-specific decoder. True only
/// when every byte was consumed and validated.
bool frame_decodes(const std::vector<std::uint8_t>& bytes,
                   std::string* why = nullptr) {
  auto head = net::peek_frame(bytes);
  if (!head.ok()) {
    if (why != nullptr) *why = head.message();
    return false;
  }
  net::FrameHead& h = head.value();
  const auto report = [&](const auto& r) {
    if (!r.ok() && why != nullptr) *why = r.message();
    return r.ok();
  };
  switch (h.type) {
    case net::FrameType::kHello: return report(net::decode_hello(h));
    case net::FrameType::kHelloOk: return report(net::decode_hello_ok(h));
    case net::FrameType::kOpenPlan: return report(net::decode_open_plan(h));
    case net::FrameType::kOpenOk: return report(net::decode_open_ok(h));
    case net::FrameType::kSolve: return report(net::decode_solve(h));
    case net::FrameType::kSolveOk: return report(net::decode_solve_ok(h));
    case net::FrameType::kError: return report(net::decode_error(h));
    case net::FrameType::kStats: return report(net::decode_stats(h));
    case net::FrameType::kStatsOk: return report(net::decode_stats_ok(h));
    case net::FrameType::kDrain: return report(net::decode_drain(h));
    case net::FrameType::kDrainOk: return report(net::decode_drain_ok(h));
    case net::FrameType::kPing: return report(net::decode_ping(h));
    case net::FrameType::kPong: return report(net::decode_pong(h));
    case net::FrameType::kFailpoint: return report(net::decode_failpoint(h));
    case net::FrameType::kFailpointOk:
      return report(net::decode_failpoint_ok(h));
    case net::FrameType::kTraceDump: return report(net::decode_trace_dump(h));
    case net::FrameType::kTraceDumpOk:
      return report(net::decode_trace_dump_ok(h));
  }
  if (why != nullptr) *why = "unknown frame type escaped peek_frame";
  return false;
}

/// Plan-blob decode through core::deserialize_snapshot (BlobReader
/// underneath). Empty string = success.
std::string snapshot_decodes(const std::vector<std::uint8_t>& bytes) {
  core::SnapshotBlob out;
  return core::deserialize_snapshot(bytes, out);
}

TEST(FuzzCorpus, SeedCorpusIsRegeneratedDeterministically) {
  fs::create_directories(corpus_dir());

  // ---- byte-level hostility against the frame decoder ----
  write_corpus("reject_empty.bin", {});
  write_corpus("reject_short_magic.bin", {'M', 'S'});

  const std::vector<std::uint8_t> hello = valid_hello_blob();
  ASSERT_GE(hello.size(), 16u);

  std::vector<std::uint8_t> bad_magic = hello;
  bad_magic[0] ^= 0xFF;
  write_corpus("reject_bad_magic.bin", bad_magic);

  std::vector<std::uint8_t> bad_version = hello;
  bad_version[4] ^= 0x07;  // version field (CRC breaks too; still typed)
  write_corpus("reject_bad_version.bin", bad_version);

  std::vector<std::uint8_t> bad_crc = hello;
  bad_crc.back() ^= 0x01;
  write_corpus("reject_bad_crc.bin", bad_crc);

  std::vector<std::uint8_t> truncated(hello.begin(), hello.end() - 5);
  write_corpus("reject_truncated.bin", truncated);

  // Unknown frame type with an otherwise pristine blob envelope.
  {
    support::BlobWriter w(net::kProtocolVersion);
    w.write_u8(0xEE);
    w.write_u64(1);
    write_corpus("reject_unknown_type.bin", std::move(w).finish());
  }
  // A hello whose client-name length claims ~1TB: the reader must refuse
  // before allocating, not after.
  {
    support::BlobWriter w(net::kProtocolVersion);
    w.write_u8(static_cast<std::uint8_t>(net::FrameType::kHello));
    w.write_u64(2);
    w.write_u16(1);
    w.write_u16(1);
    w.write_u64(0xFFFFFFFFFFull);  // string length with no bytes behind it
    write_corpus("reject_overlong_string.bin", std::move(w).finish());
  }
  // A ping with trailing payload: decoders must treat leftovers as a
  // violation, not ignore them.
  {
    support::BlobWriter w(net::kProtocolVersion);
    w.write_u8(static_cast<std::uint8_t>(net::FrameType::kPing));
    w.write_u64(3);
    w.write_u32(0xDEADBEEF);
    write_corpus("reject_trailing_payload.bin", std::move(w).finish());
  }

  // ---- plan-blob seeds (BlobReader path) ----
  const auto serial_plan = core::SolverPlan::analyze(
      sparse::gen_chain(8), core::registry::default_options(
                                core::Backend::kSerial));
  ASSERT_TRUE(serial_plan.ok());
  const auto serial_bytes = serial_plan->serialize();
  ASSERT_TRUE(serial_bytes.ok());
  write_corpus("blob_ok_snapshot_serial_v3.bin", serial_bytes.value());

  // A cpu-taskgraph plan: its blob carries the v3 tuned section, so the
  // replay exercises the newest reader path forever.
  core::SolveOptions tg =
      core::registry::default_options(core::Backend::kCpuTaskGraph);
  tg.cpu_threads = 1;
  const auto tg_plan =
      core::SolverPlan::analyze(sparse::gen_chain_heavy(3, 10, 6, 1, 5), tg);
  ASSERT_TRUE(tg_plan.ok()) << tg_plan.message();
  const auto tg_bytes = tg_plan->serialize();
  ASSERT_TRUE(tg_bytes.ok());
  write_corpus("blob_ok_snapshot_taskgraph_v3.bin", tg_bytes.value());

  std::vector<std::uint8_t> snap_truncated(tg_bytes.value().begin(),
                                           tg_bytes.value().end() - 7);
  write_corpus("reject_snapshot_truncated.bin", snap_truncated);

  std::vector<std::uint8_t> snap_v99 = tg_bytes.value();
  snap_v99[4] = 0x63;  // claim version 99
  write_corpus("reject_snapshot_version99.bin", snap_v99);

  // ---- healthy frame seeds ----
  write_corpus("frame_ok_hello.bin", hello);
  {
    net::PingFrame p;
    p.request_id = 12;
    write_corpus("frame_ok_ping.bin", blob_of(net::encode_ping(p)));
  }
}

TEST(FuzzCorpus, EveryCorpusFileFailStopsOrDecodesAsNamed) {
  std::size_t replayed = 0;
  for (const fs::directory_entry& e : fs::directory_iterator(corpus_dir())) {
    if (!e.is_regular_file() || e.path().extension() != ".bin") continue;
    const std::string name = e.path().filename().string();
    SCOPED_TRACE(name);
    std::vector<std::uint8_t> bytes;
    ASSERT_TRUE(support::read_file(e.path().string(), bytes));
    ++replayed;

    // Both decoders must survive EVERY input (fail-stop, no crash); the
    // prefix pins which outcome is the regression contract.
    std::string frame_why;
    const bool frame_ok = frame_decodes(bytes, &frame_why);
    const std::string snap_err = snapshot_decodes(bytes);

    if (name.rfind("reject_", 0) == 0) {
      EXPECT_FALSE(frame_ok) << "hostile input now decodes as a frame";
      EXPECT_FALSE(snap_err.empty())
          << "hostile input now loads as a plan snapshot";
    } else if (name.rfind("frame_ok_", 0) == 0) {
      EXPECT_TRUE(frame_ok) << frame_why;
    } else if (name.rfind("blob_ok_", 0) == 0) {
      EXPECT_TRUE(snap_err.empty()) << snap_err;
    } else {
      ADD_FAILURE() << "corpus file with unknown expectation prefix";
    }
  }
  // The seed corpus alone is this large; mutants only add to it.
  EXPECT_GE(replayed, 15u);
}

}  // namespace
}  // namespace msptrsv
