// The content-addressed PlanCache: hits share symbolic state, the key
// covers matrix content AND configuration, eviction is LRU and bounded,
// the disk directory serves cross-process warm starts, and the whole
// thing is safe under concurrent access.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/msptrsv.hpp"
#include "support/failpoint.hpp"

namespace msptrsv {
namespace {

sparse::CscMatrix matrix_seeded(std::uint64_t seed) {
  return sparse::gen_layered_dag(600, 15, 3600, 0.5, seed);
}

core::SolveOptions opts(const char* key) {
  core::SolveOptions o = core::registry::options_for(key).value();
  o.cpu_threads = 1;
  return o;
}

TEST(PlanCache, RepeatedAnalyzeIsAHit) {
  core::PlanCache cache(8);
  const sparse::CscMatrix l = matrix_seeded(1);
  const auto p1 = cache.get_or_analyze(l, opts("mg-zerocopy"));
  ASSERT_TRUE(p1.ok());
  const auto p2 = cache.get_or_analyze(l, opts("mg-zerocopy"));
  ASSERT_TRUE(p2.ok());
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.size(), 1u);

  // A hit is a shallow copy: same symbolic state, so identical reports.
  const std::vector<value_t> b =
      sparse::gen_rhs_for_solution(l, sparse::gen_solution(l.rows, 2));
  EXPECT_EQ(p1->solve(b).value().x, p2->solve(b).value().x);
  EXPECT_EQ(p1->analysis_us(), p2->analysis_us());
}

TEST(PlanCache, KeyCoversContentAndConfiguration) {
  core::PlanCache cache(8);
  const sparse::CscMatrix a = matrix_seeded(1);
  ASSERT_TRUE(cache.get_or_analyze(a, opts("mg-zerocopy")).ok());

  // Different structure: miss.
  ASSERT_TRUE(cache.get_or_analyze(matrix_seeded(2), opts("mg-zerocopy")).ok());
  // Same structure, different values: miss (the values hash is in the key).
  sparse::CscMatrix scaled = a;
  for (value_t& v : scaled.val) v *= 2.0;
  ASSERT_TRUE(cache.get_or_analyze(scaled, opts("mg-zerocopy")).ok());
  // Same content, different backend: miss.
  ASSERT_TRUE(cache.get_or_analyze(a, opts("cpu-syncfree")).ok());
  // Same content, different machine size: miss.
  core::SolveOptions two_gpus = opts("mg-zerocopy");
  two_gpus.machine = sim::Machine::dgx1(2);
  ASSERT_TRUE(cache.get_or_analyze(a, two_gpus).ok());

  EXPECT_EQ(cache.stats().misses, 5u);
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.size(), 5u);
}

TEST(PlanCache, LruEvictionIsBoundedAndOrdered) {
  core::PlanCache cache(2);
  const sparse::CscMatrix a = matrix_seeded(1);
  const sparse::CscMatrix b = matrix_seeded(2);
  const sparse::CscMatrix c = matrix_seeded(3);
  const core::SolveOptions o = opts("serial");

  ASSERT_TRUE(cache.get_or_analyze(a, o).ok());
  ASSERT_TRUE(cache.get_or_analyze(b, o).ok());
  ASSERT_TRUE(cache.get_or_analyze(a, o).ok());  // refresh a's recency
  ASSERT_TRUE(cache.get_or_analyze(c, o).ok());  // evicts b (LRU)
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);

  ASSERT_TRUE(cache.get_or_analyze(a, o).ok());  // still resident
  EXPECT_EQ(cache.stats().hits, 2u);
  ASSERT_TRUE(cache.get_or_analyze(b, o).ok());  // was evicted: re-analyzed
  EXPECT_EQ(cache.stats().misses, 4u);

  cache.set_capacity(1);
  EXPECT_EQ(cache.size(), 1u);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().hits, 0u);
}

TEST(PlanCache, ErrorsAreNotCached) {
  core::PlanCache cache(4);
  sparse::CscMatrix singular = matrix_seeded(1);
  singular.val[0] = 0.0;  // kill the first diagonal
  const auto r = cache.get_or_analyze(singular, opts("serial"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status(), core::SolveStatus::kSingularDiagonal);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(PlanCache, CachedPlanOutlivesCallerMatrix) {
  core::PlanCache cache(4);
  core::SolveOptions o = opts("cpu-levelset");
  std::vector<value_t> b;
  core::Expected<core::SolverPlan> plan(core::SolveStatus::kInternalError, "");
  {
    const sparse::CscMatrix l = matrix_seeded(7);
    b = sparse::gen_rhs_for_solution(l, sparse::gen_solution(l.rows, 8));
    plan = cache.get_or_analyze(l, o);
  }  // caller's matrix is gone; the cached plan owns its copy
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan->solve(b).ok());
}

TEST(PlanCache, DiskDirectoryServesCrossProcessWarmStart) {
  const std::string dir =
      ::testing::TempDir() + "plan_cache_disk_" +
      std::to_string(static_cast<unsigned>(::getpid()));
  std::filesystem::create_directories(dir);

  const sparse::CscMatrix l = matrix_seeded(4);
  const core::SolveOptions o = opts("mg-zerocopy");
  const std::vector<value_t> b =
      sparse::gen_rhs_for_solution(l, sparse::gen_solution(l.rows, 5));
  std::vector<value_t> x_first;
  {
    core::PlanCache first(4);
    first.set_disk_directory(dir);
    const auto p = first.get_or_analyze(l, o);
    ASSERT_TRUE(p.ok());
    x_first = p->solve(b).value().x;
    EXPECT_EQ(first.stats().disk_stores, 1u);
    // The blob landed under the content-addressed name.
    EXPECT_TRUE(std::filesystem::exists(
        dir + "/" + core::PlanCache::key_of(l, o) + ".plan"));
  }
  {
    // A "new process": fresh cache, same directory -> disk hit, no
    // re-analysis, identical solve bits.
    core::PlanCache second(4);
    second.set_disk_directory(dir);
    const auto p = second.get_or_analyze(l, o);
    ASSERT_TRUE(p.ok());
    EXPECT_EQ(second.stats().disk_hits, 1u);
    EXPECT_EQ(p->analysis_us(), 0.0);
    EXPECT_GT(p->load_us(), 0.0);
    EXPECT_EQ(p->solve(b).value().x, x_first);
  }
  std::filesystem::remove_all(dir);
}

TEST(PlanCache, ConcurrentGetOrAnalyzeIsSafe) {
  core::PlanCache cache(8);
  const sparse::CscMatrix l = matrix_seeded(9);
  const core::SolveOptions o = opts("serial");
  const std::vector<value_t> b =
      sparse::gen_rhs_for_solution(l, sparse::gen_solution(l.rows, 3));

  std::vector<std::thread> threads;
  std::vector<int> failures(4, 0);
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 25; ++i) {
        const auto p = cache.get_or_analyze(l, o);
        if (!p.ok() || !p->solve(b).ok()) ++failures[t];
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (int f : failures) EXPECT_EQ(f, 0);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.stats().hits + cache.stats().misses, 100u);
}

TEST(PlanCache, ByteBudgetEvictsByResidentFootprint) {
  const sparse::CscMatrix a = matrix_seeded(1);
  const sparse::CscMatrix b = matrix_seeded(2);
  const core::SolveOptions o = opts("cpu-syncfree");

  // Size the budget from a real plan: room for one resident plan of this
  // matrix family but not two.
  const auto probe = core::SolverPlan::analyze(sparse::CscMatrix(a), o);
  ASSERT_TRUE(probe.ok());
  const std::size_t one = probe->resident_bytes();
  EXPECT_GT(one, 0u);

  core::PlanCache cache(core::CacheOptions{/*capacity=*/8,
                                           /*max_bytes=*/one + one / 2});
  ASSERT_TRUE(cache.get_or_analyze(a, o).ok());
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_LE(cache.resident_bytes(), cache.max_bytes());

  ASSERT_TRUE(cache.get_or_analyze(b, o).ok());  // busts the byte budget
  EXPECT_EQ(cache.size(), 1u) << "count capacity had room; bytes did not";
  EXPECT_LE(cache.resident_bytes(), cache.max_bytes());
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.stats().byte_evictions, 1u);

  // The survivor is the most recently used entry (b), so a is a miss.
  ASSERT_TRUE(cache.get_or_analyze(b, o).ok());
  EXPECT_EQ(cache.stats().hits, 1u);
  ASSERT_TRUE(cache.get_or_analyze(a, o).ok());
  EXPECT_EQ(cache.stats().misses, 3u);

  // Shrinking the budget below one plan empties the cache: the budget is
  // honest -- oversized entries are served but never stay resident.
  cache.set_max_bytes(one / 2);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.resident_bytes(), 0u);
  ASSERT_TRUE(cache.get_or_analyze(a, o).ok());
  EXPECT_EQ(cache.size(), 0u);

  // Lifting the bound (0) restores plain count-LRU behavior.
  cache.set_max_bytes(0);
  ASSERT_TRUE(cache.get_or_analyze(a, o).ok());
  EXPECT_EQ(cache.size(), 1u);
}

TEST(PlanCache, FsckValidatesAndPrunesTheBlobDirectory) {
  namespace fs = std::filesystem;
  const std::string dir =
      ::testing::TempDir() + "plan_cache_fsck_" +
      std::to_string(static_cast<unsigned>(::getpid()));
  fs::create_directories(dir);

  core::PlanCache cache(8);
  cache.set_disk_directory(dir);
  const core::SolveOptions o = opts("mg-zerocopy");
  const sparse::CscMatrix a = matrix_seeded(4);
  const sparse::CscMatrix b = matrix_seeded(5);
  ASSERT_TRUE(cache.get_or_analyze(a, o).ok());
  ASSERT_TRUE(cache.get_or_analyze(b, o).ok());
  ASSERT_EQ(cache.stats().disk_stores, 2u);

  // A clean directory fscks clean.
  core::PlanCache::FsckReport clean = cache.fsck(/*repair=*/false);
  EXPECT_EQ(clean.scanned, 2);
  EXPECT_EQ(clean.valid, 2);
  EXPECT_EQ(clean.corrupt, 0);
  EXPECT_EQ(clean.mismatched, 0);

  // Corrupt one blob (flip a payload byte: the CRC must catch it), plant
  // a stale blob under a wrong key (valid bits, wrong name), and drop a
  // truncated file and a non-blob bystander.
  const std::string key_a = core::PlanCache::key_of(a, o);
  {
    std::fstream f(dir + "/" + key_a + ".plan",
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(64);
    const char flipped = static_cast<char>(f.get() ^ 0xFF);
    f.seekp(64);
    f.put(flipped);
  }
  const std::string key_b = core::PlanCache::key_of(b, o);
  fs::copy_file(dir + "/" + key_b + ".plan",
                dir + "/" + std::string(16, '0') + "-" +
                    std::string(16, '0') + "-stale.plan");
  { std::ofstream f(dir + "/truncated.plan"); f << "MS"; }
  { std::ofstream f(dir + "/README.txt"); f << "not a blob"; }

  core::PlanCache::FsckReport report = cache.fsck(/*repair=*/true);
  EXPECT_EQ(report.scanned, 4);  // README.txt ignored
  EXPECT_EQ(report.valid, 1);    // only b's genuine blob survives
  EXPECT_EQ(report.corrupt, 2);  // bit-flip + truncation
  EXPECT_EQ(report.mismatched, 1);
  EXPECT_EQ(report.pruned, 3);
  EXPECT_GT(report.bytes_freed, 0u);
  EXPECT_EQ(report.problems.size(), 3u);

  EXPECT_FALSE(fs::exists(dir + "/" + key_a + ".plan"));
  EXPECT_TRUE(fs::exists(dir + "/" + key_b + ".plan"));
  EXPECT_TRUE(fs::exists(dir + "/README.txt"));

  // After the sweep, a's lookup is a plain re-analysis (and re-store).
  core::PlanCache fresh(8);
  fresh.set_disk_directory(dir);
  ASSERT_TRUE(fresh.get_or_analyze(a, o).ok());
  EXPECT_EQ(fresh.stats().disk_hits, 0u);
  EXPECT_EQ(fresh.stats().disk_stores, 1u);

  // A cache without a directory reports all zeroes.
  core::PlanCache no_dir(2);
  EXPECT_EQ(no_dir.fsck().scanned, 0);

  fs::remove_all(dir);
}

TEST(PlanCache, FsckRacesAConcurrentWriterDeterministically) {
  // fsck's sweep must coexist with a LIVE writer: the torn blob a dying
  // writer left behind is prunable while a healthy writer of the same key
  // is frozen mid-store, and the healthy writer's atomic rename then
  // publishes a valid blob that the next sweep certifies. The writer is
  // frozen at the disk seam by a failpoint and PROVEN parked via its hit
  // counter -- no sleep anywhere decides the interleaving.
  if (!support::failpoints_compiled()) GTEST_SKIP();
  namespace fs = std::filesystem;
  const std::string dir =
      ::testing::TempDir() + "plan_cache_fsck_race_" +
      std::to_string(static_cast<unsigned>(::getpid()));
  fs::create_directories(dir);
  const core::SolveOptions o = opts("mg-zerocopy");
  const sparse::CscMatrix a = matrix_seeded(6);
  const std::string blob_path =
      dir + "/" + core::PlanCache::key_of(a, o) + ".plan";

  // Act 1 -- a dying writer: partial(64) publishes 64 truncated bytes at
  // the FINAL path (the pre-atomic-rename crash fsck exists for). Hit
  // counters are cumulative across clear_all, so the park proofs below
  // count from this baseline.
  const std::uint64_t base = support::failpoint_hits("cache.disk.write");
  core::PlanCache torn_cache(4);
  torn_cache.set_disk_directory(dir);
  ASSERT_TRUE(support::failpoint_set("cache.disk.write", "partial(64)*1"));
  ASSERT_TRUE(torn_cache.get_or_analyze(a, o).ok());  // analysis ok, store torn
  EXPECT_EQ(torn_cache.stats().disk_stores, 0u);
  ASSERT_TRUE(fs::exists(blob_path));

  // Act 2 -- a healthy writer of the SAME key, frozen at the disk seam.
  core::PlanCache writer_cache(4);
  writer_cache.set_disk_directory(dir);
  ASSERT_TRUE(support::failpoint_set("cache.disk.write", "pause"));
  std::thread writer(
      [&] { ASSERT_TRUE(writer_cache.get_or_analyze(a, o).ok()); });
  ASSERT_TRUE(support::failpoint_wait_hits("cache.disk.write", base + 2, 20000));

  // Act 3 -- fsck races the parked writer: the torn blob is pruned, and
  // the sweep completes without waiting on (or tripping over) the store
  // in flight.
  core::PlanCache::FsckReport mid = writer_cache.fsck(/*repair=*/true);
  EXPECT_EQ(mid.scanned, 1);
  EXPECT_EQ(mid.corrupt, 1);
  EXPECT_EQ(mid.pruned, 1);
  EXPECT_FALSE(fs::exists(blob_path));

  // Act 4 -- release the writer: its tmp+rename publishes a blob fsck
  // never saw half-written.
  support::failpoint_clear("cache.disk.write");
  writer.join();
  EXPECT_EQ(writer_cache.stats().disk_stores, 1u);
  core::PlanCache::FsckReport after = writer_cache.fsck(/*repair=*/false);
  EXPECT_EQ(after.scanned, 1);
  EXPECT_EQ(after.valid, 1);
  EXPECT_EQ(after.corrupt, 0);

  // The published blob is genuinely loadable: a cold cache disk-hits it.
  core::PlanCache fresh(4);
  fresh.set_disk_directory(dir);
  ASSERT_TRUE(fresh.get_or_analyze(a, o).ok());
  EXPECT_EQ(fresh.stats().disk_hits, 1u);

  support::failpoint_clear_all();
  fs::remove_all(dir);
}

TEST(PlanCacheRegistry, AnalyzeCachedUsesTheProcessWideInstance) {
  core::PlanCache::instance().clear();
  const sparse::CscMatrix l = matrix_seeded(11);
  const auto before = core::PlanCache::instance().stats();
  const auto p1 = core::registry::analyze_cached(l, "mg-zerocopy");
  const auto p2 = core::registry::analyze_cached(l, "mg-zerocopy");
  ASSERT_TRUE(p1.ok());
  ASSERT_TRUE(p2.ok());
  EXPECT_EQ(core::PlanCache::instance().stats().misses, before.misses + 1);
  EXPECT_EQ(core::PlanCache::instance().stats().hits, before.hits + 1);

  const auto bad = core::registry::analyze_cached(l, "no-such-backend");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status(), core::SolveStatus::kUnknownBackend);
  core::PlanCache::instance().clear();
}

}  // namespace
}  // namespace msptrsv
