// Sparse format substrate: COO normalization, CSC/CSR construction,
// conversions, transpose, SpMV.
#include <gtest/gtest.h>

#include <span>
#include <vector>

#include "sparse/csc.hpp"
#include "sparse/csr.hpp"
#include "sparse/generators.hpp"
#include "sparse/serialize.hpp"
#include "support/contracts.hpp"

namespace msptrsv::sparse {
namespace {

TEST(Coo, NormalizeSortsAndSumsDuplicates) {
  CooMatrix coo;
  coo.rows = coo.cols = 3;
  coo.add(2, 1, 1.0);
  coo.add(0, 0, 2.0);
  coo.add(2, 1, 3.0);
  coo.normalize();
  ASSERT_EQ(coo.entries.size(), 2u);
  EXPECT_EQ(coo.entries[0].row, 0);
  EXPECT_DOUBLE_EQ(coo.entries[1].value, 4.0);
}

TEST(Coo, ValidateRejectsOutOfRange) {
  CooMatrix coo;
  coo.rows = coo.cols = 2;
  coo.add(2, 0, 1.0);
  EXPECT_THROW(coo.validate(), support::PreconditionError);
}

TEST(Csc, FromCooBuildsSortedColumns) {
  CooMatrix coo;
  coo.rows = coo.cols = 3;
  coo.add(2, 0, 3.0);
  coo.add(0, 0, 1.0);
  coo.add(1, 1, 2.0);
  const CscMatrix m = csc_from_coo(std::move(coo));
  EXPECT_EQ(m.nnz(), 3);
  EXPECT_EQ(m.col_ptr[0], 0);
  EXPECT_EQ(m.col_ptr[1], 2);
  EXPECT_EQ(m.row_idx[0], 0);
  EXPECT_EQ(m.row_idx[1], 2);
}

TEST(Csc, ColumnViewsMatchArrays) {
  const CscMatrix m = gen_banded(50, 3, 0.8, 5);
  for (index_t j = 0; j < m.cols; ++j) {
    const auto rows = m.column_rows(j);
    const auto vals = m.column_values(j);
    ASSERT_EQ(rows.size(), vals.size());
    ASSERT_EQ(static_cast<offset_t>(rows.size()),
              m.col_ptr[j + 1] - m.col_ptr[j]);
    if (!rows.empty()) {
      EXPECT_EQ(rows[0], j);  // diagonal first
    }
  }
}

TEST(Csc, RoundTripThroughCoo) {
  const CscMatrix m = gen_random_lower(200, 4.0, 9);
  const CscMatrix again = csc_from_coo(coo_from_csc(m));
  EXPECT_TRUE(identical(m, again));
}

TEST(Csc, TransposeIsInvolution) {
  const CscMatrix m = gen_random_lower(150, 5.0, 3);
  EXPECT_TRUE(identical(m, transpose(transpose(m))));
}

TEST(Csc, TransposeSwapsEntries) {
  CooMatrix coo;
  coo.rows = 2;
  coo.cols = 3;
  coo.add(1, 2, 7.0);
  coo.add(0, 0, 1.0);
  const CscMatrix t = transpose(csc_from_coo(std::move(coo)));
  EXPECT_EQ(t.rows, 3);
  EXPECT_EQ(t.cols, 2);
  // (1,2) becomes (2,1).
  EXPECT_EQ(t.row_idx[t.col_ptr[1]], 2);
  EXPECT_DOUBLE_EQ(t.val[t.col_ptr[1]], 7.0);
}

TEST(Csc, MultiplyMatchesDenseComputation) {
  const CscMatrix m = gen_banded(40, 4, 0.7, 21);
  std::vector<value_t> x(40);
  for (int i = 0; i < 40; ++i) x[static_cast<std::size_t>(i)] = 0.1 * i - 2.0;
  const std::vector<value_t> y = multiply(m, x);
  // Dense check.
  std::vector<value_t> expect(40, 0.0);
  for (index_t j = 0; j < m.cols; ++j) {
    for (offset_t k = m.col_ptr[j]; k < m.col_ptr[j + 1]; ++k) {
      expect[static_cast<std::size_t>(m.row_idx[k])] +=
          m.val[k] * x[static_cast<std::size_t>(j)];
    }
  }
  for (int i = 0; i < 40; ++i) {
    EXPECT_NEAR(y[static_cast<std::size_t>(i)],
                expect[static_cast<std::size_t>(i)], 1e-14);
  }
}

TEST(Csc, MultiplyRejectsWrongLength) {
  const CscMatrix m = gen_diagonal(5);
  std::vector<value_t> x(4, 1.0);
  EXPECT_THROW(multiply(m, x), support::PreconditionError);
}

TEST(Csr, RoundTripWithCsc) {
  const CscMatrix m = gen_random_lower(180, 6.0, 31);
  const CsrMatrix r = csr_from_csc(m);
  r.validate();
  const CscMatrix back = csc_from_csr(r);
  EXPECT_TRUE(identical(m, back));
}

TEST(Csr, RowViewsSortedAndInRange) {
  const CsrMatrix r = csr_from_csc(gen_rmat_lower(8, 800, 77));
  for (index_t i = 0; i < r.rows; ++i) {
    const auto cols = r.row_cols(i);
    for (std::size_t k = 1; k < cols.size(); ++k) {
      EXPECT_LT(cols[k - 1], cols[k]);
    }
  }
}

TEST(Csr, ValidateCatchesUnsortedColumns) {
  CsrMatrix r;
  r.rows = r.cols = 2;
  r.row_ptr = {0, 2, 2};
  r.col_idx = {1, 0};  // unsorted within row 0
  r.val = {1.0, 2.0};
  EXPECT_THROW(r.validate(), support::InvariantError);
}

// ---- (de)serialization + structural hashing --------------------------------

TEST(Serialize, CscRoundTripsThroughBlob) {
  const CscMatrix m = gen_layered_dag(500, 12, 3000, 0.5, 17);
  support::BlobWriter w(1);
  write_csc(w, m);
  const std::vector<std::uint8_t> blob = std::move(w).finish();

  support::BlobReader r(blob, 1);
  const CscMatrix back = read_csc(r);
  ASSERT_TRUE(r.ok()) << r.error();
  EXPECT_TRUE(r.at_end());
  EXPECT_TRUE(identical(m, back));
  EXPECT_NO_THROW(back.validate());
}

TEST(Serialize, CsrRoundTripsThroughBlob) {
  const CsrMatrix m = csr_from_csc(gen_banded(200, 4, 0.7, 3));
  support::BlobWriter w(1);
  write_csr(w, m);
  const std::vector<std::uint8_t> blob = std::move(w).finish();

  support::BlobReader r(blob, 1);
  const CsrMatrix back = read_csr(r);
  ASSERT_TRUE(r.ok()) << r.error();
  EXPECT_EQ(back.row_ptr, m.row_ptr);
  EXPECT_EQ(back.col_idx, m.col_idx);
  EXPECT_EQ(back.val, m.val);
}

TEST(Serialize, EmptyMatrixRoundTrips) {
  const CscMatrix empty;
  support::BlobWriter w(1);
  write_csc(w, empty);
  const std::vector<std::uint8_t> blob = std::move(w).finish();
  support::BlobReader r(blob, 1);
  const CscMatrix back = read_csc(r);
  ASSERT_TRUE(r.ok()) << r.error();
  EXPECT_EQ(back.rows, 0);
  EXPECT_EQ(back.nnz(), 0);
}

TEST(Serialize, InconsistentRecordFailsTheReader) {
  // Any structurally unsafe CSC record must fail the reader, not build a
  // matrix the solve kernels would index out of bounds through.
  struct BadCase {
    const char* what;
    std::vector<offset_t> col_ptr;
    std::vector<index_t> row_idx;
  };
  const std::vector<BadCase> cases = {
      {"ptr length vs dims", {0, 1}, {0}},
      {"ptr does not cover the nonzeros", {0, 0, 0, 0}, {0}},
      {"ptr not monotone", {0, 1, 0, 1}, {0}},
      {"row index out of range", {0, 1, 1, 1}, {3}},
      {"negative row index", {0, 1, 1, 1}, {-1}},
  };
  for (const BadCase& c : cases) {
    support::BlobWriter w(1);
    w.write_i32(3);  // rows
    w.write_i32(3);  // cols
    w.write_span(std::span<const offset_t>(c.col_ptr));
    w.write_span(std::span<const index_t>(c.row_idx));
    w.write_span(std::span<const value_t>(
        std::vector<value_t>(c.row_idx.size(), 1.0)));
    const std::vector<std::uint8_t> blob = std::move(w).finish();
    support::BlobReader r(blob, 1);
    const CscMatrix back = read_csc(r);
    EXPECT_FALSE(r.ok()) << c.what;
    EXPECT_EQ(back.rows, 0) << c.what;
  }
}

TEST(StructuralHash, SeparatesPatternFromValues) {
  const CscMatrix m = gen_layered_dag(400, 10, 2400, 0.5, 9);
  const StructuralHash h = hash_csc(m);

  // Same content: identical hash (deterministic function of content).
  EXPECT_EQ(hash_csc(m), h);
  CscMatrix copy = m;
  EXPECT_EQ(hash_csc(copy), h);

  // Value-only change: pattern hash stable, values hash moves.
  copy.val[copy.val.size() / 2] *= 2.0;
  const StructuralHash hv = hash_csc(copy);
  EXPECT_EQ(hv.pattern, h.pattern);
  EXPECT_NE(hv.values, h.values);

  // Structural change: both move.
  const CscMatrix other = gen_layered_dag(400, 10, 2500, 0.5, 10);
  const StructuralHash ho = hash_csc(other);
  EXPECT_NE(ho.pattern, h.pattern);
  EXPECT_NE(ho.values, h.values);

  // Dimension changes hash even with identical (empty) arrays.
  CscMatrix a;
  a.rows = a.cols = 1;
  a.col_ptr = {0, 0};
  CscMatrix b;
  b.rows = b.cols = 2;
  b.col_ptr = {0, 0, 0};
  EXPECT_NE(hash_csc(a).pattern, hash_csc(b).pattern);
}

}  // namespace
}  // namespace msptrsv::sparse
