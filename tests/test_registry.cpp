// The backend registry: the catalogue must cover every Backend enumerator
// with a unique key, keys and display names must parse back, defaults must
// match each design point's reference configuration, and unknown keys must
// come back as kUnknownBackend through the status channel.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "core/msptrsv.hpp"

namespace msptrsv {
namespace {

namespace registry = core::registry;

TEST(Registry, CatalogueCoversEveryBackendWithUniqueKeys) {
  ASSERT_EQ(registry::backends().size(), 9u);
  std::set<std::string> keys;
  std::set<core::Backend> seen;
  for (const registry::BackendEntry& e : registry::backends()) {
    EXPECT_TRUE(keys.insert(e.key).second) << "duplicate key " << e.key;
    EXPECT_TRUE(seen.insert(e.backend).second);
    EXPECT_EQ(registry::entry_of(e.backend).key, std::string(e.key));
    EXPECT_EQ(e.simulated, core::is_simulated(e.backend));
  }
}

TEST(Registry, CanonicalKeysParseRoundTrip) {
  for (const registry::BackendEntry& e : registry::backends()) {
    const auto parsed = registry::parse_backend(e.key);
    ASSERT_TRUE(parsed.ok()) << e.key;
    EXPECT_EQ(parsed.value(), e.backend);
  }
}

TEST(Registry, ParsingIsCaseInsensitive) {
  const auto parsed = registry::parse_backend("MG-ZeroCopy");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value(), core::Backend::kMgZeroCopy);
}

TEST(Registry, DisplayNamesParseToo) {
  for (const registry::BackendEntry& e : registry::backends()) {
    const auto parsed = registry::parse_backend(core::backend_name(e.backend));
    ASSERT_TRUE(parsed.ok()) << core::backend_name(e.backend);
    EXPECT_EQ(parsed.value(), e.backend);
  }
}

TEST(Registry, UnknownKeyReportsStatusWithCatalogue) {
  const auto parsed = registry::parse_backend("not-a-backend");
  EXPECT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status(), core::SolveStatus::kUnknownBackend);
  EXPECT_NE(parsed.message().find("mg-zerocopy"), std::string::npos);
  // value() on an error escalates to the legacy throwing contract.
  EXPECT_THROW(parsed.value(), support::PreconditionError);
}

TEST(Registry, DefaultOptionsMatchReferenceConfigurations) {
  for (const registry::BackendEntry& e : registry::backends()) {
    const core::SolveOptions opt = registry::default_options(e.backend);
    EXPECT_EQ(opt.backend, e.backend);
    EXPECT_EQ(opt.machine.num_gpus(), e.multi_gpu ? 4 : 1) << e.key;
    EXPECT_EQ(opt.tasks_per_gpu, 8);
  }
}

TEST(Registry, OptionsForResolvesKeyOrReportsError) {
  const auto opt = registry::options_for("mg-unified-task");
  ASSERT_TRUE(opt.ok());
  EXPECT_EQ(opt.value().backend, core::Backend::kMgUnifiedTask);

  EXPECT_EQ(registry::options_for("nope").status(),
            core::SolveStatus::kUnknownBackend);
}

TEST(Registry, EveryBackendDefaultConfigurationSolves) {
  const sparse::CscMatrix l = sparse::gen_layered_dag(400, 10, 2000, 0.5, 3);
  const std::vector<value_t> x_ref = sparse::gen_solution(l.rows, 17);
  const std::vector<value_t> b = sparse::gen_rhs_for_solution(l, x_ref);
  for (const registry::BackendEntry& e : registry::backends()) {
    const core::SolveResult r =
        core::solve(l, b, registry::default_options(e.backend));
    EXPECT_LT(core::max_relative_difference(r.x, x_ref), 1e-9) << e.key;
  }
}

TEST(Registry, MachinePresetsResolveToTunedConfigs) {
  const auto d1 = registry::preset_options("dgx1x8");
  ASSERT_TRUE(d1.ok());
  EXPECT_EQ(d1->machine.num_gpus(), 8);
  EXPECT_EQ(d1->tasks_per_gpu, 8);
  EXPECT_EQ(d1->backend, core::Backend::kMgZeroCopy);

  const auto d2 = registry::preset_options("DGX2X16", core::Backend::kMgUnified);
  ASSERT_TRUE(d2.ok());  // case-insensitive like backend keys
  EXPECT_EQ(d2->machine.num_gpus(), 16);
  EXPECT_EQ(d2->tasks_per_gpu, 4);
  EXPECT_EQ(d2->backend, core::Backend::kMgUnified);
  EXPECT_NE(d2->machine.name, d1->machine.name);

  // The catalogue is enumerable and every entry resolves and solves.
  const sparse::CscMatrix l = sparse::gen_layered_dag(300, 8, 1500, 0.5, 4);
  const std::vector<value_t> x_ref = sparse::gen_solution(l.rows, 5);
  const std::vector<value_t> b = sparse::gen_rhs_for_solution(l, x_ref);
  EXPECT_GE(registry::machine_presets().size(), 2u);
  for (const registry::MachinePreset& p : registry::machine_presets()) {
    const auto opt = registry::preset_options(p.key);
    ASSERT_TRUE(opt.ok()) << p.key;
    const core::SolveResult r = core::solve(l, b, opt.value());
    EXPECT_LT(core::max_relative_difference(r.x, x_ref), 1e-9) << p.key;
  }

  const auto bad = registry::preset_options("dgx9x99");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status(), core::SolveStatus::kInvalidOptions);
  EXPECT_NE(registry::preset_keys().find("dgx1x8"), std::string::npos);
  EXPECT_NE(bad.message().find("dgx2x16"), std::string::npos);
}

}  // namespace
}  // namespace msptrsv
