// The fused execution engine: persistent WorkerPool semantics, workspace
// reuse (no growth under sequential solves), fused solve_batch bit-for-bit
// against looped solves on every backend with amortized launch/sync
// accounting, and value-only plan refresh (update_values).
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <thread>
#include <vector>

#include "core/msptrsv.hpp"

namespace msptrsv {
namespace {

sparse::CscMatrix test_matrix() {
  return sparse::gen_layered_dag(900, 24, 5400, 0.5, 77);
}

std::vector<value_t> batch_for(const sparse::CscMatrix& l, index_t num_rhs,
                               std::uint64_t seed0) {
  std::vector<value_t> batch;
  for (index_t j = 0; j < num_rhs; ++j) {
    const std::vector<value_t> bj = sparse::gen_rhs_for_solution(
        l, sparse::gen_solution(l.rows, seed0 + static_cast<std::uint64_t>(j)));
    batch.insert(batch.end(), bj.begin(), bj.end());
  }
  return batch;
}

// ---- WorkerPool ------------------------------------------------------------

TEST(WorkerPool, RunsEveryPartyAndReusesThreadsAcrossRuns) {
  core::WorkerPool pool(4);
  EXPECT_EQ(pool.parties(), 4);
  std::set<std::thread::id> thread_ids;
  std::mutex m;
  for (int run = 0; run < 50; ++run) {
    std::atomic<int> hits{0};
    std::vector<int> seen(4, 0);
    pool.run([&](int tid) {
      seen[static_cast<std::size_t>(tid)] += 1;
      hits.fetch_add(1);
      std::lock_guard<std::mutex> lock(m);
      thread_ids.insert(std::this_thread::get_id());
    });
    ASSERT_EQ(hits.load(), 4) << "run " << run;
    for (int t = 0; t < 4; ++t) ASSERT_EQ(seen[static_cast<std::size_t>(t)], 1);
  }
  // Parked threads persist: 50 runs use the same 3 workers + the caller,
  // never 50 fresh spawns.
  EXPECT_EQ(thread_ids.size(), 4u);
}

TEST(WorkerPool, SinglePartyOwnsNoThreadsAndRunsInline) {
  core::WorkerPool pool(1);
  EXPECT_EQ(pool.parties(), 1);
  const std::thread::id caller = std::this_thread::get_id();
  std::thread::id ran_on;
  pool.run([&](int tid) {
    EXPECT_EQ(tid, 0);
    ran_on = std::this_thread::get_id();
  });
  EXPECT_EQ(ran_on, caller);
}

// ---- Workspace reuse -------------------------------------------------------

TEST(SolveWorkspace, SequentialPlanSolvesReuseOneWorkspace) {
  const sparse::CscMatrix l = test_matrix();
  const std::vector<value_t> b = batch_for(l, 1, 5);
  for (const char* key : {"cpu-levelset", "cpu-syncfree"}) {
    core::SolveOptions opt = core::registry::options_for(key).value();
    opt.cpu_threads = 2;
    const auto plan = core::SolverPlan::analyze(l, opt);
    ASSERT_TRUE(plan.ok());
    EXPECT_EQ(plan->workspace_count(), 0u) << key << " (lazy until first solve)";
    for (int i = 0; i < 20; ++i) {
      // Generation-tagged scratch: solve i must not observe solve i-1's
      // left-sums or delivery counts; the residual catches any leakage.
      const auto r = plan->solve(b);
      ASSERT_TRUE(r.ok()) << key;
      EXPECT_LT(core::relative_residual(l, r.value().x, b), 1e-11)
          << key << " iteration " << i;
    }
    EXPECT_EQ(plan->workspace_count(), 1u)
        << key << ": sequential solves must reuse one workspace";
  }
}

// ---- Fused solve_batch -----------------------------------------------------

/// Fused and looped solve_batch must agree bit-for-bit on every backend.
/// Host thread counts are pinned to 1 so the floating-point summation
/// order is deterministic and the comparison can be exact.
TEST(FusedBatch, BitForBitMatchesLoopedOnEveryBackendAndWidth) {
  const sparse::CscMatrix l = test_matrix();
  for (const core::registry::BackendEntry& e : core::registry::backends()) {
    core::SolveOptions fused = core::registry::default_options(e.backend);
    fused.cpu_threads = 1;
    ASSERT_TRUE(fused.fuse_batch) << e.key << ": registry batch-aware default";
    core::SolveOptions looped = fused;
    looped.fuse_batch = false;

    const auto fused_plan = core::SolverPlan::analyze(l, fused);
    const auto looped_plan = core::SolverPlan::analyze(l, looped);
    ASSERT_TRUE(fused_plan.ok()) << e.key;
    ASSERT_TRUE(looped_plan.ok()) << e.key;

    for (index_t num_rhs : {1, 4, 16}) {
      const std::vector<value_t> batch = batch_for(l, num_rhs, 300);
      const auto rf = fused_plan->solve_batch(batch, num_rhs);
      const auto rl = looped_plan->solve_batch(batch, num_rhs);
      ASSERT_TRUE(rf.ok()) << e.key;
      ASSERT_TRUE(rl.ok()) << e.key;
      EXPECT_EQ(rf.value().x, rl.value().x)
          << e.key << " fused vs looped, " << num_rhs << " rhs";
      EXPECT_EQ(rf.value().report.num_rhs, num_rhs) << e.key;
      // A fused batch is one solve.
      EXPECT_EQ(rf.value().report.max_solve_us, rf.value().report.solve_us)
          << e.key;
      if (e.simulated && num_rhs > 1) {
        // The whole point: amortized launch/sync per batch, not per rhs.
        EXPECT_LT(rf.value().report.solve_us, rl.value().report.solve_us)
            << e.key << " at " << num_rhs << " rhs";
        EXPECT_LT(rf.value().report.kernel_launches,
                  rl.value().report.kernel_launches)
            << e.key;
        EXPECT_EQ(rf.value().report.kernel_launches,
                  rl.value().report.kernel_launches /
                      static_cast<std::uint64_t>(num_rhs))
            << e.key << ": one launch per level/task per batch";
      }
    }
  }
}

TEST(FusedBatch, MultiThreadedHostBackendsStayCorrect) {
  const sparse::CscMatrix l = test_matrix();
  const index_t num_rhs = 8;
  const std::vector<value_t> batch = batch_for(l, num_rhs, 900);
  const std::size_t n = static_cast<std::size_t>(l.rows);
  for (const char* key : {"cpu-levelset", "cpu-syncfree"}) {
    core::SolveOptions opt = core::registry::options_for(key).value();
    opt.cpu_threads = 4;
    const auto plan = core::SolverPlan::analyze(l, opt);
    ASSERT_TRUE(plan.ok());
    for (int round = 0; round < 5; ++round) {
      const auto r = plan->solve_batch(batch, num_rhs);
      ASSERT_TRUE(r.ok()) << key;
      for (index_t j = 0; j < num_rhs; ++j) {
        const std::vector<value_t> xj(
            r.value().x.begin() + static_cast<std::ptrdiff_t>(j * l.rows),
            r.value().x.begin() + static_cast<std::ptrdiff_t>((j + 1) * l.rows));
        const std::span<const value_t> bj =
            std::span<const value_t>(batch).subspan(
                static_cast<std::size_t>(j) * n, n);
        EXPECT_LT(core::relative_residual(l, xj, bj), 1e-11)
            << key << " rhs " << j << " round " << round;
      }
    }
  }
}

TEST(FusedBatch, UpperPlansSolveBatchesThroughTheFusedKernel) {
  const sparse::CscMatrix lower = sparse::gen_layered_dag(500, 14, 2500, 0.5, 9);
  const sparse::CscMatrix upper = sparse::mirror_to_upper(lower);
  const index_t num_rhs = 4;
  const std::size_t n = static_cast<std::size_t>(upper.rows);

  std::vector<value_t> refs;  // reference solutions, column-major
  std::vector<value_t> batch;
  for (index_t j = 0; j < num_rhs; ++j) {
    const std::vector<value_t> xj =
        sparse::gen_solution(upper.rows, 50 + static_cast<std::uint64_t>(j));
    const std::vector<value_t> bj = sparse::multiply(upper, xj);
    refs.insert(refs.end(), xj.begin(), xj.end());
    batch.insert(batch.end(), bj.begin(), bj.end());
  }

  core::SolveOptions opt = core::registry::options_for("mg-zerocopy").value();
  const auto plan = core::SolverPlan::analyze_upper(upper, opt);
  ASSERT_TRUE(plan.ok()) << plan.message();
  const auto rb = plan->solve_batch(batch, num_rhs);
  ASSERT_TRUE(rb.ok());
  ASSERT_EQ(rb.value().x.size(), refs.size());
  EXPECT_LT(core::max_relative_difference(rb.value().x, refs), 1e-9);

  // And bit-for-bit against per-column solves of the same plan.
  for (index_t j = 0; j < num_rhs; ++j) {
    const auto rj = plan->solve(
        std::span<const value_t>(batch).subspan(static_cast<std::size_t>(j) * n,
                                                n));
    ASSERT_TRUE(rj.ok());
    const std::vector<value_t> col(
        rb.value().x.begin() + static_cast<std::ptrdiff_t>(j) *
                                   static_cast<std::ptrdiff_t>(n),
        rb.value().x.begin() + (static_cast<std::ptrdiff_t>(j) + 1) *
                                   static_cast<std::ptrdiff_t>(n));
    EXPECT_EQ(col, rj.value().x) << "rhs " << j;
  }
}

// ---- update_values ---------------------------------------------------------

TEST(UpdateValues, RefreshesNumericsWithoutReanalysis) {
  const sparse::CscMatrix l = test_matrix();
  for (const core::registry::BackendEntry& e : core::registry::backends()) {
    core::SolveOptions opt = core::registry::default_options(e.backend);
    opt.cpu_threads = 1;
    auto plan = core::SolverPlan::analyze(l, opt);
    ASSERT_TRUE(plan.ok()) << e.key;

    // Same sparsity, new values: scale everything by 3 (keeps the factor
    // solvable) and nudge off-diagonals so it is not a pure rescale.
    sparse::CscMatrix l2 = l;
    for (std::size_t k = 0; k < l2.val.size(); ++k) {
      l2.val[k] *= 3.0;
      l2.val[k] += (k % 7 == 0) ? 0.25 : 0.0;
    }
    for (index_t j = 0; j < l2.cols; ++j) {
      ASSERT_NE(l2.val[static_cast<std::size_t>(l2.col_ptr[j])], 0.0);
    }

    const auto updated = plan->update_values(l2.val);
    ASSERT_TRUE(updated.ok()) << e.key << ": " << updated.message();

    const std::vector<value_t> b = batch_for(l2, 1, 4);
    const auto r = plan->solve(b);
    ASSERT_TRUE(r.ok()) << e.key;
    // The refreshed plan must agree bit-for-bit with a from-scratch plan
    // of the new matrix (identical analysis, identical kernels).
    const auto fresh = core::SolverPlan::analyze(l2, opt);
    ASSERT_TRUE(fresh.ok());
    const auto rf = fresh->solve(b);
    ASSERT_TRUE(rf.ok());
    EXPECT_EQ(r.value().x, rf.value().x) << e.key;
  }
}

TEST(UpdateValues, UpperPlansScatterThroughTheReversalMapping) {
  const sparse::CscMatrix lower = sparse::gen_layered_dag(400, 12, 2000, 0.5, 3);
  const sparse::CscMatrix upper = sparse::mirror_to_upper(lower);
  core::SolveOptions opt = core::registry::options_for("serial").value();
  auto plan = core::SolverPlan::analyze_upper(upper, opt);
  ASSERT_TRUE(plan.ok());

  sparse::CscMatrix upper2 = upper;
  for (std::size_t k = 0; k < upper2.val.size(); ++k) {
    upper2.val[k] = upper2.val[k] * 2.0 + (k % 5 == 0 ? 0.125 : 0.0);
  }
  const auto updated = plan->update_values(upper2.val);
  ASSERT_TRUE(updated.ok()) << updated.message();

  const std::vector<value_t> x_ref = sparse::gen_solution(upper2.rows, 8);
  const std::vector<value_t> b = sparse::multiply(upper2, x_ref);
  const auto r = plan->solve(b);
  ASSERT_TRUE(r.ok());
  EXPECT_LT(core::max_relative_difference(r.value().x, x_ref), 1e-9);
}

TEST(UpdateValues, RejectsBadInputWithoutMutating) {
  const sparse::CscMatrix l = test_matrix();
  core::SolveOptions opt = core::registry::options_for("cpu-syncfree").value();
  opt.cpu_threads = 1;
  auto plan = core::SolverPlan::analyze(l, opt);
  ASSERT_TRUE(plan.ok());
  const std::vector<value_t> b = batch_for(l, 1, 6);
  const std::vector<value_t> x_before = plan->solve(b).value().x;

  // Wrong size.
  std::vector<value_t> short_vals(l.val.size() - 1, 1.0);
  EXPECT_EQ(plan->update_values(short_vals).status(),
            core::SolveStatus::kShapeMismatch);

  // Zero diagonal: rejected before any value is written.
  std::vector<value_t> singular = l.val;
  singular[static_cast<std::size_t>(l.col_ptr[5])] = 0.0;
  EXPECT_EQ(plan->update_values(singular).status(),
            core::SolveStatus::kSingularDiagonal);
  EXPECT_EQ(plan->solve(b).value().x, x_before)
      << "a rejected refresh must leave the plan untouched";

  // Borrowed plans read the caller's matrix; refresh is in-place there.
  auto borrowed = core::SolverPlan::analyze_borrowed(l, opt);
  ASSERT_TRUE(borrowed.ok());
  EXPECT_EQ(borrowed->update_values(l.val).status(),
            core::SolveStatus::kInvalidOptions);
}

}  // namespace
}  // namespace msptrsv
