// Chaos suite: REAL forked solve_serverd processes driven through
// kill / hang / slow-disk / corrupt-frame scripts, every fault injected
// at a named failpoint seam (support/failpoint.hpp) -- armed locally for
// client-side faults, over the wire (--enable-failpoints) for
// server-side ones.
//
// The contract under test is the self-healing story end to end:
//  * ZERO LOST ADMITTED REQUESTS -- every request either returns correct
//    bits or a TYPED error; nothing hangs, nothing vanishes;
//  * the router's breaker walks closed -> open -> half-open -> closed,
//    failover re-homes plans via the shared blob directory, and the
//    fleet view reports a dark shard EXPLICITLY;
//  * fault timing is failpoint- or probe-driven, never a wall-clock
//    race: a dead process is dead, a parked thread is parked until
//    released, and recovery is triggered by an explicit probe_now().
#include <gtest/gtest.h>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "core/msptrsv.hpp"
#include "net/router.hpp"
#include "support/blob.hpp"
#include "support/failpoint.hpp"

namespace msptrsv {
namespace {

namespace fs = std::filesystem;
using core::SolveStatus;

constexpr const char* kServerd = "./solve_serverd";
constexpr const char* kBackend = "cpu-syncfree";

struct ShardProc {
  pid_t pid = -1;
  std::uint16_t port = 0;
};

/// A factor plus the reference bits the fleet must reproduce exactly --
/// computed locally with the SERVICE preset for the backend, which is
/// what every shard's plan_for() resolves the key to.
struct Problem {
  sparse::CscMatrix l;
  std::vector<value_t> b;
  std::vector<value_t> want;
};

Problem make_problem(std::uint64_t seed, index_t n = 500) {
  Problem p;
  p.l = sparse::gen_layered_dag(n, 14, 6 * n, 0.5, seed);
  p.b = sparse::gen_rhs_for_solution(p.l, sparse::gen_solution(n, seed + 1));
  const auto options = core::registry::service_options(kBackend);
  const auto plan = core::SolverPlan::analyze(p.l, options.value());
  p.want = plan.value().solve(p.b).value().x;
  return p;
}

class ChaosFleetTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!support::failpoints_compiled()) {
      GTEST_SKIP() << "built with MSPTRSV_FAILPOINTS=OFF";
    }
    if (!fs::exists(kServerd)) {
      GTEST_SKIP() << "solve_serverd not next to the test binary";
    }
    support::failpoint_clear_all();
    const ::testing::TestInfo* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = ::testing::TempDir() + "chaos_" + info->name() + "_" +
           std::to_string(static_cast<unsigned>(::getpid()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    shards_.resize(2);
    ASSERT_TRUE(spawn(0));
    ASSERT_TRUE(spawn(1));
  }

  void TearDown() override {
    support::failpoint_clear_all();
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      if (shards_[s].pid > 0) reap(s, /*graceful=*/true);
    }
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  /// fork/execs shard `slot` (--enable-failpoints, shared --cache-dir);
  /// fixed_port != 0 restarts it on a known port. Readiness is the
  /// atomically renamed port file, not a sleep.
  bool spawn(std::size_t slot, std::uint16_t fixed_port = 0) {
    const std::string port_file =
        dir_ + "/port_" + std::to_string(slot);
    fs::remove(port_file);
    const std::string port_arg =
        "--port=" + std::to_string(static_cast<unsigned>(fixed_port));
    const std::string file_arg = "--port-file=" + port_file;
    const std::string cache_arg = "--cache-dir=" + dir_;

    const pid_t pid = fork();
    if (pid < 0) return false;
    if (pid == 0) {
      execl(kServerd, kServerd, port_arg.c_str(), file_arg.c_str(),
            "--threads=2", cache_arg.c_str(), "--max-pending=1024",
            "--enable-failpoints=true", static_cast<const char*>(nullptr));
      _exit(127);
    }
    for (int tries = 0; tries < 750; ++tries) {
      std::vector<std::uint8_t> bytes;
      if (support::read_file(port_file, bytes) && !bytes.empty()) {
        shards_[slot].pid = pid;
        shards_[slot].port = static_cast<std::uint16_t>(
            std::atoi(std::string(bytes.begin(), bytes.end()).c_str()));
        return shards_[slot].port != 0;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    kill(pid, SIGKILL);
    waitpid(pid, nullptr, 0);
    return false;
  }

  /// SIGKILL + reap: the "process vanished" fault. Deterministic -- after
  /// this returns, the port refuses connections outright.
  void kill_now(std::size_t slot) {
    ASSERT_GT(shards_[slot].pid, 0);
    kill(shards_[slot].pid, SIGKILL);
    waitpid(shards_[slot].pid, nullptr, 0);
    shards_[slot].pid = -1;
  }

  /// Reaps a child that exited on its own (crash-failpoint scripts).
  void reap_exited(std::size_t slot) {
    ASSERT_GT(shards_[slot].pid, 0);
    waitpid(shards_[slot].pid, nullptr, 0);
    shards_[slot].pid = -1;
  }

  /// SIGTERM + reap with a bounded wait; true iff the daemon DRAINED and
  /// exited 0 (the clean-shutdown assertion: a wedged server cannot).
  bool reap(std::size_t slot, bool graceful) {
    ShardProc& s = shards_[slot];
    if (s.pid <= 0) return true;
    kill(s.pid, graceful ? SIGTERM : SIGKILL);
    int status = 0;
    for (int tries = 0; tries < 500; ++tries) {
      const pid_t done = waitpid(s.pid, &status, WNOHANG);
      if (done == s.pid) {
        s.pid = -1;
        return WIFEXITED(status) && WEXITSTATUS(status) == 0;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    kill(s.pid, SIGKILL);
    waitpid(s.pid, nullptr, 0);
    s.pid = -1;
    return false;
  }

  bool stop_clean(std::size_t slot) { return reap(slot, /*graceful=*/true); }

  net::ClientOptions client_options(std::uint16_t port) const {
    net::ClientOptions c;
    c.port = port;
    // Fail fast: a dead shard should surface as kNetworkError after one
    // reconnect attempt, not after a long backoff ladder.
    c.retry.max_attempts = 2;
    c.retry.initial_backoff = std::chrono::microseconds(500);
    c.retry.max_backoff = std::chrono::microseconds(2000);
    return c;
  }

  net::RouterOptions router_options(std::chrono::milliseconds cooldown) const {
    net::RouterOptions o;
    for (const ShardProc& s : shards_) {
      o.endpoints.push_back({"127.0.0.1", s.port});
    }
    o.client = client_options(0);  // host/port overridden per endpoint
    // One transport failure opens the breaker: chaos scripts want the
    // state machine to move on the FIRST injected fault, with recovery
    // timing owned by the test (cooldown / probe_now), not by repetition.
    o.breaker_failure_threshold = 1;
    o.breaker_cooldown = cooldown;
    o.probe_timeout = std::chrono::milliseconds(300);
    return o;
  }

  std::string dir_;
  std::vector<ShardProc> shards_;
};

/// Kill a shard MID-REQUEST (crash failpoint inside the solve path) and
/// require: every admitted request still answers -- the ones the dead
/// shard served before dying, the one it died holding (failover re-homes
/// it), and everything after -- all bit-for-bit; then a restart on the
/// same port plus one probe closes the breaker again.
TEST_F(ChaosFleetTest, CrashedHomeShardFailsOverWithZeroLostRequests) {
  const Problem p = make_problem(101);
  net::Router router(router_options(std::chrono::minutes(10)));
  const auto h = router.open(p.l, kBackend);
  ASSERT_TRUE(h.ok()) << h.message();
  const std::size_t home = h.value().shard;
  const std::size_t backup = 1 - home;

  // Arm the bomb first: solves 1-2 pass through the skip window, solve 3
  // takes the home process down MID-EXECUTION (_Exit inside the kernel
  // dispatch, reply never sent).
  net::SolveClient control(client_options(shards_[home].port));
  const auto armed = control.set_failpoint("core.solve", "crash(86)@2");
  ASSERT_TRUE(armed.ok()) << armed.message();

  for (int i = 0; i < 6; ++i) {
    const auto r = router.solve(h.value(), p.b);
    ASSERT_TRUE(r.ok()) << "request " << i << ": " << r.message();
    EXPECT_EQ(r.value(), p.want) << "request " << i;
  }
  reap_exited(home);

  // The outage is explicit, not inferred: breaker open, unreachable,
  // last_error recorded; the backup stayed closed and absorbed the plan.
  std::vector<net::ShardStatus> st = router.fleet_status();
  EXPECT_EQ(st[home].breaker, net::BreakerState::kOpen);
  EXPECT_FALSE(st[home].reachable);
  EXPECT_EQ(st[home].breaker_opens, 1u);
  EXPECT_FALSE(st[home].last_error.empty());
  EXPECT_EQ(st[backup].breaker, net::BreakerState::kClosed);
  EXPECT_GE(router.shard_client(backup).metrics_local().failovers, 1u);

  // Rolling replacement: same port, one explicit probe, breaker closed --
  // and traffic goes home again (the client replays the plan open).
  const std::uint64_t failovers_before =
      router.shard_client(backup).metrics_local().failovers;
  ASSERT_TRUE(spawn(home, shards_[home].port));
  EXPECT_EQ(router.probe_now(), 2u);
  st = router.fleet_status();
  EXPECT_EQ(st[home].breaker, net::BreakerState::kClosed);
  EXPECT_TRUE(st[home].reachable);

  const auto healed = router.solve(h.value(), p.b);
  ASSERT_TRUE(healed.ok()) << healed.message();
  EXPECT_EQ(healed.value(), p.want);
  EXPECT_EQ(router.shard_client(backup).metrics_local().failovers,
            failovers_before);

  EXPECT_TRUE(stop_clean(home));
  EXPECT_TRUE(stop_clean(backup));
}

/// The breaker state machine, one transition per request: closed -> open
/// on the first dead-shard failure, open -> half-open on the next request
/// (cooldown 0: the request IS the trial), half-open -> open when the
/// trial fails, half-open -> closed when it succeeds after the restart.
TEST_F(ChaosFleetTest, BreakerWalksOpenHalfOpenClosed) {
  const Problem p = make_problem(202);
  net::Router router(router_options(std::chrono::milliseconds(0)));
  const auto h = router.open(p.l, kBackend);
  ASSERT_TRUE(h.ok()) << h.message();
  const std::size_t home = h.value().shard;
  const std::size_t backup = 1 - home;

  const auto baseline = router.solve(h.value(), p.b);
  ASSERT_TRUE(baseline.ok()) << baseline.message();
  EXPECT_EQ(baseline.value(), p.want);

  kill_now(home);

  // closed -> open, answered by failover.
  const auto first = router.solve(h.value(), p.b);
  ASSERT_TRUE(first.ok()) << first.message();
  EXPECT_EQ(first.value(), p.want);
  EXPECT_EQ(router.fleet_status()[home].breaker_opens, 1u);

  // open -> half-open trial (still dead) -> open again: opens counts 2,
  // which only the half-open path can produce.
  const auto second = router.solve(h.value(), p.b);
  ASSERT_TRUE(second.ok()) << second.message();
  EXPECT_EQ(second.value(), p.want);
  EXPECT_EQ(router.fleet_status()[home].breaker_opens, 2u);

  // Restart; the next trial succeeds and CLOSES the breaker -- traffic is
  // back on the home shard (its solve counter moves, failover's does not).
  ASSERT_TRUE(spawn(home, shards_[home].port));
  const std::uint64_t home_solves_before =
      router.shard_client(home).metrics_local().solves;
  const std::uint64_t failovers_before =
      router.shard_client(backup).metrics_local().failovers;
  const auto healed = router.solve(h.value(), p.b);
  ASSERT_TRUE(healed.ok()) << healed.message();
  EXPECT_EQ(healed.value(), p.want);
  const std::vector<net::ShardStatus> st = router.fleet_status();
  EXPECT_EQ(st[home].breaker, net::BreakerState::kClosed);
  EXPECT_EQ(st[home].breaker_opens, 2u);
  EXPECT_GT(router.shard_client(home).metrics_local().solves,
            home_solves_before);
  EXPECT_EQ(router.shard_client(backup).metrics_local().failovers,
            failovers_before);

  EXPECT_TRUE(stop_clean(home));
  EXPECT_TRUE(stop_clean(backup));
}

/// A shard that is alive but WEDGED (its reply path parked at the
/// net.sock.send seam) is the nasty case: TCP stays up, connects still
/// succeed. The ping's hard deadline is what catches it -- the probe
/// times out, tears the connection down, and the admitted in-flight
/// request completes with a TYPED network error instead of hanging
/// forever. Traffic re-homes; a replacement process heals the fleet.
TEST_F(ChaosFleetTest, HungShardProbeTimeoutFailsPendingRequestsTyped) {
  const Problem p = make_problem(303);
  net::Router router(router_options(std::chrono::minutes(10)));
  const auto h = router.open(p.l, kBackend);
  ASSERT_TRUE(h.ok()) << h.message();
  const std::size_t home = h.value().shard;
  const std::size_t backup = 1 - home;

  const auto baseline = router.solve(h.value(), p.b);
  ASSERT_TRUE(baseline.ok()) << baseline.message();

  // Park every server->client send AFTER the arming ack (@1 skips it):
  // from here on the home shard accepts work and answers nothing.
  net::SolveClient control(client_options(shards_[home].port));
  const auto armed = control.set_failpoint("net.sock.send", "pause@1");
  ASSERT_TRUE(armed.ok()) << armed.message();

  // Admit one request into the wedged shard (async: no retry tier).
  auto pending = router.submit_batch(h.value(), p.b, 1);

  // The probe's ping deadline expires -> the home connection is torn
  // down -> the pending future completes, TYPED. Nothing is lost
  // silently and nothing blocks on a reply that will never come.
  EXPECT_EQ(router.probe_now(), 1u);
  const auto hung = pending.get();
  ASSERT_FALSE(hung.ok());
  EXPECT_EQ(hung.status(), SolveStatus::kNetworkError);

  std::vector<net::ShardStatus> st = router.fleet_status();
  EXPECT_EQ(st[home].breaker, net::BreakerState::kOpen);
  EXPECT_FALSE(st[home].reachable);

  // Sync traffic re-homes onto the backup via the shared blob directory.
  const auto failed_over = router.solve(h.value(), p.b);
  ASSERT_TRUE(failed_over.ok()) << failed_over.message();
  EXPECT_EQ(failed_over.value(), p.want);
  EXPECT_GE(router.shard_client(backup).metrics_local().failovers, 1u);

  // A wedged process cannot drain; the operator playbook is replace, not
  // signal. Same port, one probe, breaker closed, traffic home again.
  kill_now(home);
  ASSERT_TRUE(spawn(home, shards_[home].port));
  EXPECT_EQ(router.probe_now(), 2u);
  EXPECT_EQ(router.fleet_status()[home].breaker,
            net::BreakerState::kClosed);
  const auto healed = router.solve(h.value(), p.b);
  ASSERT_TRUE(healed.ok()) << healed.message();
  EXPECT_EQ(healed.value(), p.want);

  EXPECT_TRUE(stop_clean(home));
  EXPECT_TRUE(stop_clean(backup));
}

/// Hedged high-priority solves: with the home shard's kernel parked, the
/// duplicate leg on the backup answers -- the caller sees correct bits at
/// backup latency, never the hang. The home leg is abandoned, not
/// leaked: releasing the seam lets it finish and the shard drain clean.
TEST_F(ChaosFleetTest, HedgedHighPrioritySolveSurvivesAHungHome) {
  const Problem p = make_problem(404);
  net::RouterOptions opt = router_options(std::chrono::milliseconds(0));
  opt.hedge_high_priority = true;
  net::Router router(opt);
  const auto h = router.open(p.l, kBackend);
  ASSERT_TRUE(h.ok()) << h.message();
  const std::size_t home = h.value().shard;
  const std::size_t backup = 1 - home;

  const auto baseline = router.solve(h.value(), p.b);
  ASSERT_TRUE(baseline.ok()) << baseline.message();

  // Park the home KERNEL (not its socket): the shard converses happily --
  // accepts the request, answers pings -- it just never finishes solving.
  // Exactly the slow-shard tail that hedging exists to cut.
  net::SolveClient control(client_options(shards_[home].port));
  const auto armed = control.set_failpoint("core.solve", "pause");
  ASSERT_TRUE(armed.ok()) << armed.message();

  const auto hedged =
      router.solve(h.value(), p.b, service::Priority::kHigh);
  ASSERT_TRUE(hedged.ok()) << hedged.message();
  EXPECT_EQ(hedged.value(), p.want);
  EXPECT_GE(router.shard_client(home).metrics_local().hedges, 1u);
  EXPECT_GE(router.shard_client(backup).metrics_local().failovers, 1u);

  // Release the parked dispatch; its late reply completes an abandoned
  // promise and the shard is whole again -- proven by a normal-priority
  // solve landing on it and by the clean SIGTERM drain.
  const auto cleared = control.set_failpoint("core.solve", "off");
  ASSERT_TRUE(cleared.ok()) << cleared.message();
  const auto after = router.solve(h.value(), p.b);
  ASSERT_TRUE(after.ok()) << after.message();
  EXPECT_EQ(after.value(), p.want);

  EXPECT_TRUE(stop_clean(home));
  EXPECT_TRUE(stop_clean(backup));
}

/// Corrupt frames are FAIL-STOP, both directions: a torn client write
/// (local net.sock.send partial) and a failed server reply send (wire-
/// armed error) each kill exactly one connection; the client's
/// reconnect-and-replay retry tier heals both invisibly -- same bits,
/// reconnects counted, breakers untouched.
TEST_F(ChaosFleetTest, TornFramesFailStopTheConnectionAndHeal) {
  const Problem p = make_problem(505);
  net::Router router(router_options(std::chrono::minutes(10)));
  const auto h = router.open(p.l, kBackend);
  ASSERT_TRUE(h.ok()) << h.message();
  const std::size_t home = h.value().shard;

  const auto baseline = router.solve(h.value(), p.b);
  ASSERT_TRUE(baseline.ok()) << baseline.message();
  const std::uint64_t reconnects0 =
      router.shard_client(home).metrics_local().reconnects;

  // Client-side torn write: 20 bytes of the solve frame, then a typed
  // send failure. Armed LOCALLY -- this process is the faulty party.
  ASSERT_TRUE(support::failpoint_set("net.sock.send", "partial(20)*1"));
  const auto torn_send = router.solve(h.value(), p.b);
  ASSERT_TRUE(torn_send.ok()) << torn_send.message();
  EXPECT_EQ(torn_send.value(), p.want);
  EXPECT_GE(router.shard_client(home).metrics_local().reconnects,
            reconnects0 + 1);

  // Server-side reply-path failure (@1 spares the arming ack): the
  // server fail-stops that connection; the client reconnects and replays.
  net::SolveClient control(client_options(shards_[home].port));
  const auto armed = control.set_failpoint("net.sock.send", "error*1@1");
  ASSERT_TRUE(armed.ok()) << armed.message();
  const auto torn_reply = router.solve(h.value(), p.b);
  ASSERT_TRUE(torn_reply.ok()) << torn_reply.message();
  EXPECT_EQ(torn_reply.value(), p.want);
  EXPECT_GE(router.shard_client(home).metrics_local().reconnects,
            reconnects0 + 2);

  // Both faults healed BELOW the routing tier: no breaker ever moved.
  for (const net::ShardStatus& st : router.fleet_status()) {
    EXPECT_EQ(st.breaker, net::BreakerState::kClosed);
  }
  EXPECT_TRUE(stop_clean(home));
  EXPECT_TRUE(stop_clean(1 - home));
}

/// Failover's warm tier can ITSELF fail: with the home shard dead and the
/// backup's disk read faulted, the hash-ref re-open is refused TYPED
/// (kBadSnapshot) -- which must NOT poison the backup's breaker (the
/// process is healthy; it just cannot serve this plan yet). The next
/// request, disk healed, re-homes normally.
TEST_F(ChaosFleetTest, FailoverOpenRefusedTypedKeepsBackupHealthy) {
  const Problem p = make_problem(606);
  net::Router router(router_options(std::chrono::minutes(10)));
  const auto h = router.open(p.l, kBackend);
  ASSERT_TRUE(h.ok()) << h.message();
  const std::size_t home = h.value().shard;
  const std::size_t backup = 1 - home;

  // The open above stored the plan blob in the shared directory; fault
  // the BACKUP's next disk read before killing the home shard.
  net::SolveClient control(client_options(shards_[backup].port));
  const auto armed = control.set_failpoint("cache.disk.read", "error*1");
  ASSERT_TRUE(armed.ok()) << armed.message();
  kill_now(home);

  const auto refused = router.solve(h.value(), p.b);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status(), SolveStatus::kBadSnapshot);
  std::vector<net::ShardStatus> st = router.fleet_status();
  EXPECT_EQ(st[home].breaker, net::BreakerState::kOpen);
  EXPECT_EQ(st[backup].breaker, net::BreakerState::kClosed)
      << "a typed refusal must not open the healthy shard's breaker";

  // One-shot fault exhausted: the identical request now re-homes.
  const auto after = router.solve(h.value(), p.b);
  ASSERT_TRUE(after.ok()) << after.message();
  EXPECT_EQ(after.value(), p.want);
  EXPECT_GE(router.shard_client(backup).metrics_local().failovers, 1u);
  EXPECT_TRUE(router.fleet_status()[backup].reachable);

  EXPECT_TRUE(stop_clean(backup));
}

/// The fleet view never narrows silently: with one shard SIGKILLed, the
/// merged stats still answer, the dark shard is named -- reachable=false,
/// last_error recorded -- and the Prometheus scrape carries
/// msptrsv_shard_up 0 for exactly that endpoint.
TEST_F(ChaosFleetTest, FleetViewReportsADarkShardExplicitly) {
  net::Router router(router_options(std::chrono::minutes(10)));
  const std::uint16_t dead_port = shards_[1].port;
  const std::uint16_t live_port = shards_[0].port;
  kill_now(1);

  std::size_t reachable = 0;
  std::vector<net::ShardStatus> statuses;
  const auto merged = router.fleet_stats(&reachable, &statuses);
  ASSERT_TRUE(merged.ok()) << merged.message();
  EXPECT_EQ(reachable, 1u);
  ASSERT_EQ(statuses.size(), 2u);
  EXPECT_TRUE(statuses[0].reachable);
  EXPECT_FALSE(statuses[1].reachable);
  EXPECT_FALSE(statuses[1].last_error.empty());

  const auto scrape = router.fleet_metrics();
  ASSERT_TRUE(scrape.ok()) << scrape.message();
  const std::string& text = scrape.value();
  EXPECT_NE(text.find("msptrsv_shard_up{shard=\"127.0.0.1:" +
                      std::to_string(dead_port) + "\"} 0"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("msptrsv_shard_up{shard=\"127.0.0.1:" +
                      std::to_string(live_port) + "\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("msptrsv_shard_breaker_state"), std::string::npos);

  EXPECT_TRUE(stop_clean(0));
}

}  // namespace
}  // namespace msptrsv
