// Device memory capacity tracking (the out-of-core side of the paper).
#include <gtest/gtest.h>

#include "sim/memory.hpp"
#include "support/contracts.hpp"

namespace msptrsv::sim {
namespace {

constexpr double kGiB = 1024.0 * 1024.0 * 1024.0;

TEST(MemoryTracker, AllocationsAccumulate) {
  MemoryTracker mem(2, 16.0 * kGiB);
  mem.allocate(0, 4.0 * kGiB, "matrix");
  mem.allocate(0, 1.0 * kGiB, "vectors");
  EXPECT_DOUBLE_EQ(mem.used_bytes(0), 5.0 * kGiB);
  EXPECT_DOUBLE_EQ(mem.used_bytes(1), 0.0);
  EXPECT_DOUBLE_EQ(mem.headroom_bytes(0), 11.0 * kGiB);
}

TEST(MemoryTracker, OverflowThrowsLikeCudaMalloc) {
  MemoryTracker mem(1, 16.0 * kGiB);
  mem.allocate(0, 15.0 * kGiB, "big");
  EXPECT_FALSE(mem.would_fit(0, 2.0 * kGiB));
  EXPECT_TRUE(mem.would_fit(0, 0.5 * kGiB));
  EXPECT_THROW(mem.allocate(0, 2.0 * kGiB, "too much"),
               support::PreconditionError);
}

TEST(MemoryTracker, ReleaseReturnsHeadroom) {
  MemoryTracker mem(1, 8.0 * kGiB);
  mem.allocate(0, 6.0 * kGiB, "x");
  mem.release(0, 4.0 * kGiB);
  EXPECT_DOUBLE_EQ(mem.used_bytes(0), 2.0 * kGiB);
  EXPECT_THROW(mem.release(0, 3.0 * kGiB), support::PreconditionError);
}

TEST(MemoryTracker, SummaryMentionsEveryDevice) {
  MemoryTracker mem(3, kGiB);
  const std::string s = mem.summary();
  EXPECT_NE(s.find("GPU 0"), std::string::npos);
  EXPECT_NE(s.find("GPU 2"), std::string::npos);
}

TEST(MinGpus, SmallWorkloadFitsOneGpu) {
  EXPECT_EQ(min_gpus_for_footprint(4.0 * kGiB, 0.5 * kGiB, 16.0 * kGiB, 8), 1);
}

TEST(MinGpus, OutOfCoreWorkloadNeedsMultipleGpus) {
  // 40 GiB of partitioned data + 1 GiB replicated per GPU on 16 GiB parts:
  // 40/g + 1 <= 16  =>  g >= 2.67  =>  3 GPUs.
  EXPECT_EQ(min_gpus_for_footprint(40.0 * kGiB, 1.0 * kGiB, 16.0 * kGiB, 8), 3);
}

TEST(MinGpus, ReplicationCanMakeItInfeasible) {
  // Replicated state alone exceeds capacity: no GPU count helps.
  EXPECT_EQ(min_gpus_for_footprint(1.0 * kGiB, 20.0 * kGiB, 16.0 * kGiB, 16),
            17);
}

}  // namespace
}  // namespace msptrsv::sim
