// Simulated level-set baseline (the csrsv2 stand-in).
#include <gtest/gtest.h>

#include "core/levelset.hpp"
#include "core/reference.hpp"
#include "core/residual.hpp"
#include "sparse/generators.hpp"

namespace msptrsv::core {
namespace {

TEST(LevelSetSim, SolutionMatchesSerial) {
  const sparse::CscMatrix l = sparse::gen_layered_dag(2000, 50, 10000, 0.5, 9);
  const std::vector<value_t> b =
      sparse::gen_rhs_for_solution(l, sparse::gen_solution(l.rows, 1));
  const LevelSetResult r = solve_levelset_simulated(l, b, sim::Machine::dgx1(1));
  EXPECT_LT(max_relative_difference(r.x, solve_lower_serial(l, b)), 1e-12);
}

TEST(LevelSetSim, TimeScalesWithLevelCountAtFixedWork) {
  // Same n and nnz, different depth: the per-level synchronization must
  // dominate for the deep variant.
  const sparse::CscMatrix shallow =
      sparse::gen_layered_dag(4000, 8, 20000, 0.5, 11);
  const sparse::CscMatrix deep =
      sparse::gen_layered_dag(4000, 800, 20000, 0.5, 11);
  const std::vector<value_t> bs =
      sparse::gen_rhs_for_solution(shallow, sparse::gen_solution(4000, 2));
  const std::vector<value_t> bd =
      sparse::gen_rhs_for_solution(deep, sparse::gen_solution(4000, 2));
  const sim::Machine m = sim::Machine::dgx1(1);
  const auto rs = solve_levelset_simulated(shallow, bs, m);
  const auto rd = solve_levelset_simulated(deep, bd, m);
  EXPECT_GT(rd.report.solve_us, 5.0 * rs.report.solve_us);
  EXPECT_EQ(rd.report.kernel_launches, 800u);
  EXPECT_EQ(rs.report.kernel_launches, 8u);
}

TEST(LevelSetSim, PerLevelCostIsAtLeastTheSyncOverhead) {
  const sparse::CscMatrix l = sparse::gen_chain(500);
  const std::vector<value_t> b(500, 1.0);
  const sim::Machine m = sim::Machine::dgx1(1);
  const auto r = solve_levelset_simulated(l, b, m);
  EXPECT_GE(r.report.solve_us, 500.0 * m.cost.level_sync_us);
}

TEST(LevelSetSim, AnalysisCostsMoreThanSyncFreePreprocessing) {
  // csrsv2_analysis does level construction; the sync-free design only
  // counts in-degrees. The report must reflect that asymmetry.
  const sparse::CscMatrix l = sparse::gen_layered_dag(5000, 40, 25000, 0.5, 13);
  const std::vector<value_t> b =
      sparse::gen_rhs_for_solution(l, sparse::gen_solution(l.rows, 3));
  const sim::Machine m = sim::Machine::dgx1(1);
  const auto ls = solve_levelset_simulated(l, b, m);
  const double syncfree_analysis =
      static_cast<double>(l.nnz()) * m.cost.indegree_per_nnz_us;
  EXPECT_GT(ls.report.analysis_us, syncfree_analysis);
}

TEST(LevelSetSim, WideLevelUsesAllWarpSlots) {
  // A single-level matrix with many more components than slots: time must
  // reflect slot-limited throughput, not one-shot width.
  const sparse::CscMatrix l = sparse::gen_diagonal(100000);
  const std::vector<value_t> b(100000, 1.0);
  const sim::Machine m = sim::Machine::dgx1(1);
  const auto r = solve_levelset_simulated(l, b, m);
  const double per_comp = m.cost.solve_base_us;
  const double lower_bound =
      100000.0 * per_comp / m.cost.warp_slots_per_gpu;
  EXPECT_GE(r.report.solve_us, lower_bound);
}

}  // namespace
}  // namespace msptrsv::core
