// Support utilities: RNG determinism and distributions, tables, stats, CLI.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "support/cli.hpp"
#include "support/contracts.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

namespace msptrsv::support {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Xoshiro256 a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Xoshiro256 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a.next() == b.next());
  EXPECT_LT(equal, 5);
}

TEST(Rng, NextBelowStaysInRange) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(Rng, NextBelowRejectsZeroBound) {
  Xoshiro256 rng(7);
  EXPECT_THROW(rng.next_below(0), PreconditionError);
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Xoshiro256 rng(3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.uniform_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, Uniform01InHalfOpenInterval) {
  Xoshiro256 rng(11);
  double mean = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const double u = rng.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    mean += u;
  }
  EXPECT_NEAR(mean / 20000.0, 0.5, 0.02);
}

TEST(Rng, BernoulliMatchesProbability) {
  Xoshiro256 rng(13);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Rng, GeometricMeanMatchesTheory) {
  Xoshiro256 rng(17);
  const double p = 0.25;
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) sum += static_cast<double>(rng.geometric(p));
  // E[failures before first success] = (1-p)/p = 3.
  EXPECT_NEAR(sum / 20000.0, 3.0, 0.15);
}

TEST(Rng, ForkProducesIndependentStream) {
  Xoshiro256 a(5);
  Xoshiro256 c = a.fork();
  EXPECT_NE(a.next(), c.next());
}

TEST(Stats, MeanAndGeomean) {
  const std::vector<double> xs = {1.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 7.0 / 3.0);
  EXPECT_DOUBLE_EQ(geomean(xs), 2.0);
}

TEST(Stats, GeomeanRejectsNonPositive) {
  const std::vector<double> xs = {1.0, 0.0};
  EXPECT_THROW(geomean(xs), PreconditionError);
}

TEST(Stats, ImbalanceFactor) {
  const std::vector<double> balanced = {3.0, 3.0, 3.0};
  EXPECT_DOUBLE_EQ(imbalance_factor(balanced), 1.0);
  const std::vector<double> skewed = {1.0, 1.0, 4.0};
  EXPECT_DOUBLE_EQ(imbalance_factor(skewed), 2.0);
}

TEST(Stats, StddevAndCoV) {
  const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_NEAR(stddev(xs), 2.0, 1e-12);
  EXPECT_NEAR(coeff_of_variation(xs), 0.4, 1e-12);
}

TEST(Table, RendersAlignedColumnsAndSeparators) {
  Table t({"Name", "Value"});
  t.add_row("alpha", 1);
  t.add_separator();
  t.add_row("b", 23);
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| Name  | Value |"), std::string::npos);
  EXPECT_NE(s.find("| alpha |     1 |"), std::string::npos);
  EXPECT_NE(s.find("| b     |    23 |"), std::string::npos);
}

TEST(Table, CsvEscapesSpecialCharacters) {
  Table t({"a", "b"});
  t.add_row("x,y", "say \"hi\"");
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"x,y\""), std::string::npos);
  EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(Table, RejectsTooManyCells) {
  Table t({"only"});
  t.begin_row();
  t.add_cell("one");
  EXPECT_THROW(t.add_cell("two"), PreconditionError);
}

TEST(Cli, ParsesAllSupportedSyntaxes) {
  CliParser cli("test");
  cli.add_option("alpha", "0", "an int");
  cli.add_option("beta", "x", "a string");
  cli.add_option("flag", "false", "a bool");
  const char* argv[] = {"prog", "--alpha=5", "--beta", "hello", "--flag"};
  ASSERT_TRUE(cli.parse(5, argv));
  EXPECT_EQ(cli.get_int("alpha"), 5);
  EXPECT_EQ(cli.get_string("beta"), "hello");
  EXPECT_TRUE(cli.get_bool("flag"));
}

TEST(Cli, DefaultsApplyWhenAbsent) {
  CliParser cli("test");
  cli.add_option("gamma", "2.5", "a double");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(cli.parse(1, argv));
  EXPECT_DOUBLE_EQ(cli.get_double("gamma"), 2.5);
}

TEST(Cli, RejectsUnknownFlag) {
  CliParser cli("test");
  const char* argv[] = {"prog", "--nope"};
  EXPECT_THROW(cli.parse(2, argv), PreconditionError);
}

TEST(Cli, ListParsing) {
  CliParser cli("test");
  cli.add_option("names", "", "csv list");
  const char* argv[] = {"prog", "--names=a,b,c"};
  ASSERT_TRUE(cli.parse(2, argv));
  const auto list = cli.get_list("names");
  ASSERT_EQ(list.size(), 3u);
  EXPECT_EQ(list[0], "a");
  EXPECT_EQ(list[2], "c");
}

TEST(Contracts, MacrosThrowTypedErrors) {
  EXPECT_THROW(MSPTRSV_REQUIRE(false, "msg"), PreconditionError);
  EXPECT_THROW(MSPTRSV_ENSURE(false, "msg"), InvariantError);
  EXPECT_NO_THROW(MSPTRSV_REQUIRE(true, "msg"));
}

}  // namespace
}  // namespace msptrsv::support
