// Support utilities: RNG determinism and distributions, tables, stats, CLI,
// and the versioned/CRC-guarded blob format underneath plan persistence.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <set>
#include <span>
#include <string>
#include <vector>

#include "support/blob.hpp"
#include "support/cli.hpp"
#include "support/contracts.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

namespace msptrsv::support {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Xoshiro256 a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Xoshiro256 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a.next() == b.next());
  EXPECT_LT(equal, 5);
}

TEST(Rng, NextBelowStaysInRange) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(Rng, NextBelowRejectsZeroBound) {
  Xoshiro256 rng(7);
  EXPECT_THROW(rng.next_below(0), PreconditionError);
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Xoshiro256 rng(3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.uniform_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, Uniform01InHalfOpenInterval) {
  Xoshiro256 rng(11);
  double mean = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const double u = rng.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    mean += u;
  }
  EXPECT_NEAR(mean / 20000.0, 0.5, 0.02);
}

TEST(Rng, BernoulliMatchesProbability) {
  Xoshiro256 rng(13);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Rng, GeometricMeanMatchesTheory) {
  Xoshiro256 rng(17);
  const double p = 0.25;
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) sum += static_cast<double>(rng.geometric(p));
  // E[failures before first success] = (1-p)/p = 3.
  EXPECT_NEAR(sum / 20000.0, 3.0, 0.15);
}

TEST(Rng, ForkProducesIndependentStream) {
  Xoshiro256 a(5);
  Xoshiro256 c = a.fork();
  EXPECT_NE(a.next(), c.next());
}

TEST(Stats, MeanAndGeomean) {
  const std::vector<double> xs = {1.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 7.0 / 3.0);
  EXPECT_DOUBLE_EQ(geomean(xs), 2.0);
}

TEST(Stats, GeomeanRejectsNonPositive) {
  const std::vector<double> xs = {1.0, 0.0};
  EXPECT_THROW(geomean(xs), PreconditionError);
}

TEST(Stats, ImbalanceFactor) {
  const std::vector<double> balanced = {3.0, 3.0, 3.0};
  EXPECT_DOUBLE_EQ(imbalance_factor(balanced), 1.0);
  const std::vector<double> skewed = {1.0, 1.0, 4.0};
  EXPECT_DOUBLE_EQ(imbalance_factor(skewed), 2.0);
}

TEST(Stats, StddevAndCoV) {
  const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_NEAR(stddev(xs), 2.0, 1e-12);
  EXPECT_NEAR(coeff_of_variation(xs), 0.4, 1e-12);
}

TEST(Stats, PercentileInterpolatesOrderStatistics) {
  EXPECT_DOUBLE_EQ(percentile({}, 0.5), 0.0);
  const std::vector<double> one = {7.0};
  EXPECT_DOUBLE_EQ(percentile(one, 0.0), 7.0);
  EXPECT_DOUBLE_EQ(percentile(one, 0.99), 7.0);
  // Unsorted input; R-7 linear interpolation between order statistics.
  const std::vector<double> xs = {40.0, 10.0, 20.0, 30.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.5), 25.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 1.0), 40.0);
  EXPECT_NEAR(percentile(xs, 0.99), 39.7, 1e-12);
}

TEST(Table, RendersAlignedColumnsAndSeparators) {
  Table t({"Name", "Value"});
  t.add_row("alpha", 1);
  t.add_separator();
  t.add_row("b", 23);
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| Name  | Value |"), std::string::npos);
  EXPECT_NE(s.find("| alpha |     1 |"), std::string::npos);
  EXPECT_NE(s.find("| b     |    23 |"), std::string::npos);
}

TEST(Table, CsvEscapesSpecialCharacters) {
  Table t({"a", "b"});
  t.add_row("x,y", "say \"hi\"");
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"x,y\""), std::string::npos);
  EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(Table, RejectsTooManyCells) {
  Table t({"only"});
  t.begin_row();
  t.add_cell("one");
  EXPECT_THROW(t.add_cell("two"), PreconditionError);
}

TEST(Cli, ParsesAllSupportedSyntaxes) {
  CliParser cli("test");
  cli.add_option("alpha", "0", "an int");
  cli.add_option("beta", "x", "a string");
  cli.add_option("flag", "false", "a bool");
  const char* argv[] = {"prog", "--alpha=5", "--beta", "hello", "--flag"};
  ASSERT_TRUE(cli.parse(5, argv));
  EXPECT_EQ(cli.get_int("alpha"), 5);
  EXPECT_EQ(cli.get_string("beta"), "hello");
  EXPECT_TRUE(cli.get_bool("flag"));
}

TEST(Cli, DefaultsApplyWhenAbsent) {
  CliParser cli("test");
  cli.add_option("gamma", "2.5", "a double");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(cli.parse(1, argv));
  EXPECT_DOUBLE_EQ(cli.get_double("gamma"), 2.5);
}

TEST(Cli, RejectsUnknownFlag) {
  CliParser cli("test");
  const char* argv[] = {"prog", "--nope"};
  EXPECT_THROW(cli.parse(2, argv), PreconditionError);
}

TEST(Cli, ListParsing) {
  CliParser cli("test");
  cli.add_option("names", "", "csv list");
  const char* argv[] = {"prog", "--names=a,b,c"};
  ASSERT_TRUE(cli.parse(2, argv));
  const auto list = cli.get_list("names");
  ASSERT_EQ(list.size(), 3u);
  EXPECT_EQ(list[0], "a");
  EXPECT_EQ(list[2], "c");
}

TEST(Contracts, MacrosThrowTypedErrors) {
  EXPECT_THROW(MSPTRSV_REQUIRE(false, "msg"), PreconditionError);
  EXPECT_THROW(MSPTRSV_ENSURE(false, "msg"), InvariantError);
  EXPECT_NO_THROW(MSPTRSV_REQUIRE(true, "msg"));
}

// ---- blob format (the plan-persistence substrate) --------------------------

TEST(Blob, PrimitivesAndSpansRoundTrip) {
  BlobWriter w(3);
  w.write_u8(7);
  w.write_u32(0xDEADBEEFu);
  w.write_i64(-42);
  w.write_f64(2.5);
  w.write_string("msptrsv");
  const std::vector<std::int32_t> ints{1, -2, 3};
  const std::vector<double> doubles{0.5, -0.25};
  w.write_span(std::span<const std::int32_t>(ints));
  w.write_span(std::span<const double>(doubles));
  const std::vector<std::uint8_t> blob = std::move(w).finish();

  BlobReader r(blob, 3);
  ASSERT_TRUE(r.ok()) << r.error();
  EXPECT_EQ(r.version(), 3);
  EXPECT_EQ(r.read_u8(), 7);
  EXPECT_EQ(r.read_u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.read_i64(), -42);
  EXPECT_EQ(r.read_f64(), 2.5);
  EXPECT_EQ(r.read_string(), "msptrsv");
  EXPECT_EQ(r.read_vector<std::int32_t>(), ints);
  EXPECT_EQ(r.read_vector<double>(), doubles);
  EXPECT_TRUE(r.at_end());
  ASSERT_TRUE(r.ok()) << r.error();
}

TEST(Blob, CrcDetectsEveryFlippedByte) {
  BlobWriter w(1);
  w.write_string("payload under test");
  w.write_u64(123456789);
  const std::vector<std::uint8_t> blob = std::move(w).finish();
  ASSERT_TRUE(BlobReader(blob, 1).ok());
  // Any single-bit corruption anywhere -- payload OR trailer -- must fail
  // the constructor (header bytes fail their own checks).
  for (std::size_t i = 8; i < blob.size(); ++i) {
    std::vector<std::uint8_t> bad = blob;
    bad[i] ^= 0x01;
    EXPECT_FALSE(BlobReader(bad, 1).ok()) << "byte " << i;
  }
}

TEST(Blob, RejectsTruncationWrongVersionAndBadMagic) {
  BlobWriter w(2);
  w.write_u64(99);
  const std::vector<std::uint8_t> blob = std::move(w).finish();

  for (std::size_t keep = 0; keep < blob.size(); ++keep) {
    BlobReader r(std::span<const std::uint8_t>(blob).first(keep), 2);
    EXPECT_FALSE(r.ok()) << "kept " << keep;
  }
  BlobReader wrong_version(blob, 5);
  EXPECT_FALSE(wrong_version.ok());
  EXPECT_NE(wrong_version.error().find("version"), std::string::npos);
  EXPECT_EQ(wrong_version.version(), 2);  // still reported for diagnostics

  std::vector<std::uint8_t> bad_magic = blob;
  bad_magic[0] = 'X';
  EXPECT_NE(BlobReader(bad_magic, 2).error().find("magic"), std::string::npos);

  std::vector<std::uint8_t> bad_endian = blob;
  bad_endian[6] = 99;
  EXPECT_NE(BlobReader(bad_endian, 2).error().find("endian"),
            std::string::npos);
}

TEST(Blob, ReadsAreFailStopAndBoundsChecked) {
  BlobWriter w(1);
  w.write_u32(5);
  const std::vector<std::uint8_t> blob = std::move(w).finish();
  BlobReader r(blob, 1);
  EXPECT_EQ(r.read_u32(), 5u);
  // Overrun: returns zero, latches the error, and stays failed.
  EXPECT_EQ(r.read_u64(), 0u);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.read_u32(), 0u);
  EXPECT_TRUE(r.read_vector<double>().empty());
  EXPECT_FALSE(r.at_end());  // at_end is "cleanly consumed", not "failed"
}

TEST(Blob, LyingArrayCountCannotForceAllocation) {
  // A corrupt (huge) element count must be rejected by the bounds check
  // before any allocation happens. Build a blob whose count field claims
  // far more elements than the payload holds, with a valid CRC.
  BlobWriter w(1);
  w.write_span(std::span<const double>(std::vector<double>{1.0, 2.0}));
  std::vector<std::uint8_t> blob = std::move(w).finish();
  // Rewrite the count (first 8 payload bytes) to a huge value and reseal.
  const std::uint64_t huge = ~std::uint64_t{0} / 16;
  std::memcpy(blob.data() + 8, &huge, sizeof(huge));
  const std::uint32_t crc = crc32(
      std::span<const std::uint8_t>(blob).subspan(8, blob.size() - 12));
  std::memcpy(blob.data() + blob.size() - 4, &crc, sizeof(crc));

  BlobReader r(blob, 1);
  ASSERT_TRUE(r.ok()) << r.error();
  EXPECT_TRUE(r.read_vector<double>().empty());
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.error().find("exceeds"), std::string::npos) << r.error();
}

TEST(Blob, FileRoundTripAndMissingFile) {
  BlobWriter w(1);
  w.write_string("to disk and back");
  const std::vector<std::uint8_t> blob = std::move(w).finish();
  const std::string path = ::testing::TempDir() + "blob_roundtrip.bin";
  ASSERT_TRUE(write_file(path, blob));
  std::vector<std::uint8_t> back;
  ASSERT_TRUE(read_file(path, back));
  EXPECT_EQ(back, blob);
  std::remove(path.c_str());
  EXPECT_FALSE(read_file(path, back));
  EXPECT_TRUE(back.empty());
}

TEST(Blob, Crc32MatchesKnownVectors) {
  // CRC-32C (Castagnoli) reference values; guards the hardware and the
  // slice-by-8 software paths against each other and against the spec.
  const std::string s = "123456789";
  std::vector<std::uint8_t> bytes(s.begin(), s.end());
  EXPECT_EQ(crc32(bytes), 0xE3069283u);  // canonical CRC-32C check value
  EXPECT_EQ(crc32({}), 0x00000000u);
  // An unaligned tail (length not a multiple of 8) exercises both loops.
  bytes.push_back('0');
  bytes.push_back('1');
  EXPECT_EQ(crc32(bytes), crc32(bytes));
}

}  // namespace
}  // namespace msptrsv::support
