// The Table I synthetic suite: paper statistics, scaling rules, metrics.
#include <gtest/gtest.h>

#include <cmath>

#include "sparse/suite.hpp"
#include "sparse/triangular.hpp"
#include "support/contracts.hpp"

namespace msptrsv::sparse {
namespace {

TEST(Suite, HasAllSixteenEntries) {
  EXPECT_EQ(table1_entries().size(), 16u);
}

TEST(Suite, ParallelismColumnIsConsistentWithRowsAndLevels) {
  // rows / levels should be within 25% of the published parallelism for
  // every (typo-corrected) entry.
  for (const SuiteEntry& e : table1_entries()) {
    const double computed =
        static_cast<double>(e.paper_rows) / e.paper_levels;
    EXPECT_NEAR(computed / e.paper_parallelism, 1.0, 0.25) << e.name;
  }
}

TEST(Suite, FindEntryByName) {
  EXPECT_EQ(find_entry("dc2").paper_levels, 14);
  EXPECT_THROW(find_entry("not-a-matrix"), support::PreconditionError);
}

TEST(Suite, SmallMatricesGenerateAtFullScale) {
  const SuiteMatrix m = generate_suite_matrix("powersim", 100000);
  EXPECT_DOUBLE_EQ(m.scale, 1.0);
  EXPECT_EQ(m.lower.rows, m.entry.paper_rows);
  EXPECT_EQ(m.analysis.num_levels, m.entry.paper_levels);
  // nnz within 30% of the paper's.
  EXPECT_NEAR(static_cast<double>(m.lower.nnz()) / m.entry.paper_nnz, 1.0, 0.3);
}

TEST(Suite, LargeMatricesScaleDownPreservingDependency) {
  const SuiteMatrix m = generate_suite_matrix("twitter7", 20000);
  EXPECT_EQ(m.lower.rows, 20000);
  EXPECT_LT(m.scale, 0.001);
  const double paper_dep = static_cast<double>(m.entry.paper_nnz) /
                           m.entry.paper_rows;
  EXPECT_NEAR(m.analysis.dependency_metric() / paper_dep, 1.0, 0.35);
}

TEST(Suite, ScaledMatricesKeepLevelCountWhenFeasible) {
  // belgium_osm: 631 levels; at 20000 rows that is ~31 per level >= 4,
  // so the level count must be preserved exactly.
  const SuiteMatrix m = generate_suite_matrix("belgium_osm", 20000);
  EXPECT_EQ(m.analysis.num_levels, 631);
}

TEST(Suite, ExtremeParallelismFallsBackToRatio) {
  // nlpkkt160 has 2 levels; preserved trivially.
  const SuiteMatrix m = generate_suite_matrix("nlpkkt160", 10000);
  EXPECT_EQ(m.analysis.num_levels, 2);
}

TEST(Suite, AllMatricesAreSolvable) {
  for (const SuiteMatrix& m : generate_suite(4000)) {
    EXPECT_NO_THROW(require_solvable_lower(m.lower)) << m.entry.name;
    EXPECT_GT(m.analysis.num_levels, 0) << m.entry.name;
  }
}

TEST(Suite, GenerationIsDeterministic) {
  const SuiteMatrix a = generate_suite_matrix("Wordnet3", 30000);
  const SuiteMatrix b = generate_suite_matrix("Wordnet3", 30000);
  EXPECT_TRUE(identical(a.lower, b.lower));
}

TEST(Suite, Fig3AndFig10SubsetsExist) {
  for (const std::string& n : fig3_matrix_names()) {
    EXPECT_NO_THROW(find_entry(n));
  }
  for (const std::string& n : fig10_matrix_names()) {
    EXPECT_NO_THROW(find_entry(n));
  }
  EXPECT_EQ(fig3_matrix_names().size(), 4u);
  EXPECT_EQ(fig10_matrix_names().size(), 5u);
}

TEST(Suite, OutOfCoreFlagsMatchPaper) {
  EXPECT_TRUE(find_entry("twitter7").out_of_core);
  EXPECT_TRUE(find_entry("uk-2005").out_of_core);
  EXPECT_FALSE(find_entry("powersim").out_of_core);
}

}  // namespace
}  // namespace msptrsv::sparse
