// ILU(0) / IC(0) factorizations (the MA48 substitution).
#include <gtest/gtest.h>

#include <cmath>

#include "core/reference.hpp"
#include "core/residual.hpp"
#include "sparse/factorization.hpp"
#include "sparse/generators.hpp"
#include "sparse/triangular.hpp"
#include "support/contracts.hpp"
#include "support/rng.hpp"

namespace msptrsv::sparse {
namespace {

/// 2D Poisson matrix (SPD, diagonally dominant) as CSR.
CsrMatrix poisson2d(index_t nx, index_t ny) {
  CooMatrix coo;
  const index_t n = nx * ny;
  coo.rows = coo.cols = n;
  for (index_t y = 0; y < ny; ++y) {
    for (index_t x = 0; x < nx; ++x) {
      const index_t i = y * nx + x;
      coo.add(i, i, 4.0);
      if (x > 0) { coo.add(i, i - 1, -1.0); coo.add(i - 1, i, -1.0); }
      if (y > 0) { coo.add(i, i - nx, -1.0); coo.add(i - nx, i, -1.0); }
    }
  }
  CooMatrix dedup = coo;
  dedup.normalize();
  return csr_from_coo(std::move(dedup));
}

TEST(Ilu0, ExactForTriangularInput) {
  // ILU(0) of an already-lower-triangular matrix is exact: L*U == A.
  const CscMatrix lo = gen_random_lower(120, 4.0, 5);
  const IluResult f = ilu0(csr_from_csc(lo));
  // U should be diagonal here and L*U reproduce A exactly on the pattern.
  EXPECT_TRUE(is_lower_triangular(f.lower));
  EXPECT_TRUE(is_upper_triangular(f.upper));
  // Check A ~= L*U by applying both to a vector.
  const std::vector<value_t> x = gen_solution(lo.rows, 3);
  const std::vector<value_t> ux = multiply(f.upper, x);
  const std::vector<value_t> lux = multiply(f.lower, ux);
  const std::vector<value_t> ax = multiply(lo, x);
  for (std::size_t i = 0; i < lux.size(); ++i) {
    EXPECT_NEAR(lux[i], ax[i], 1e-10 * (1.0 + std::abs(ax[i])));
  }
}

TEST(Ilu0, NoFillInPreservesPattern) {
  const CsrMatrix a = poisson2d(12, 12);
  const IluResult f = ilu0(a);
  // nnz(L) + nnz(U) == nnz(A) + n (unit diagonal stored in L).
  EXPECT_EQ(f.lower.nnz() + f.upper.nnz(), a.nnz() + a.rows);
}

TEST(Ilu0, FactorsAreSolvable) {
  const CsrMatrix a = poisson2d(16, 16);
  const IluResult f = ilu0(a);
  EXPECT_NO_THROW(require_solvable_lower(f.lower));
  // Unit diagonal on L.
  for (index_t j = 0; j < f.lower.cols; ++j) {
    EXPECT_DOUBLE_EQ(f.lower.val[f.lower.col_ptr[j]], 1.0);
  }
}

TEST(Ilu0, PreconditionerReducesResidual) {
  // For the Poisson matrix ILU(0) is a strong preconditioner: one
  // application of (LU)^-1 should shrink the residual of Ax=b.
  const CsrMatrix a = poisson2d(10, 10);
  const CscMatrix a_csc = csc_from_csr(a);
  const IluResult f = ilu0(a);

  const std::vector<value_t> x_true = gen_solution(a.rows, 7);
  const std::vector<value_t> b = multiply(a_csc, x_true);

  // x0 = 0; r0 = b; x1 = (LU)^{-1} b.
  const std::vector<value_t> y = core::solve_lower_serial(f.lower, b);
  const std::vector<value_t> x1 = core::solve_upper_serial(f.upper, y);

  const value_t r1 = core::residual_inf_norm(a_csc, x1, b);
  value_t b_norm = 0.0;
  for (value_t v : b) b_norm = std::max(b_norm, std::abs(v));
  EXPECT_LT(r1, 0.5 * b_norm);
}

TEST(Ilu0, RejectsMissingDiagonal) {
  CooMatrix coo;
  coo.rows = coo.cols = 2;
  coo.add(0, 0, 1.0);
  coo.add(1, 0, 1.0);
  EXPECT_THROW(ilu0(csr_from_coo(std::move(coo))), support::PreconditionError);
}

TEST(Ic0, FactorReproducesSpdMatrixOnPattern) {
  const CsrMatrix a = poisson2d(8, 8);
  const CscMatrix l = ic0(a);
  EXPECT_TRUE(is_lower_triangular(l));
  require_solvable_lower(l);
  // For the Poisson matrix IC(0) is close to exact Cholesky; check
  // A x ~= L (L^T x).
  const CscMatrix lt = transpose(l);
  const std::vector<value_t> x = gen_solution(a.rows, 11);
  const std::vector<value_t> ltx = multiply(lt, x);
  const std::vector<value_t> llx = multiply(l, ltx);
  const std::vector<value_t> ax = multiply(csc_from_csr(a), x);
  double worst = 0.0;
  for (std::size_t i = 0; i < ax.size(); ++i) {
    worst = std::max(worst, std::abs(ax[i] - llx[i]));
  }
  EXPECT_LT(worst, 0.75);  // no-fill approximation error stays bounded
}

TEST(LowerFactorOf, ProducesSolvableFactorFromGeneralMatrix) {
  // A general square matrix with full diagonal.
  CooMatrix coo;
  coo.rows = coo.cols = 50;
  support::Xoshiro256 rng(5);
  for (index_t i = 0; i < 50; ++i) {
    coo.add(i, i, 4.0 + rng.uniform01());
    for (int e = 0; e < 3; ++e) {
      const index_t j = static_cast<index_t>(rng.next_below(50));
      if (j != i) coo.add(i, j, rng.uniform_real(-0.5, 0.5));
    }
  }
  const CscMatrix l = lower_factor_of(csc_from_coo(std::move(coo)));
  EXPECT_NO_THROW(require_solvable_lower(l));
}

}  // namespace
}  // namespace msptrsv::sparse
