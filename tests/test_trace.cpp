// End-to-end solve tracing (ISSUE 9), tested at four layers:
//
//  * UNIT: trace ids round-trip their hex form; spans nest under the
//    thread context and collect as Chrome trace-event JSON; a disarmed
//    process records nothing; the explicit slow threshold retains trees.
//  * DETERMINISM: solves are bit-for-bit identical with tracing armed,
//    disarmed, or never touched -- the tracing layer only reads clocks
//    and writes thread-local memory, and this pins it.
//  * STATS: the per-phase histograms absorb concurrent writers exactly
//    (lock-free recording, mergeable snapshots).
//  * WIRE + STITCHING: the trace id rides the solve frame as an optional
//    tail (legacy frames stay byte-identical), a real loopback server
//    yields one stitched span tree -- wire rx, queue wait, gang claim,
//    per-level kernel spans, reply flush -- under the client's id, the
//    id survives injected-overload retries, and a two-shard router
//    failover still answers with the id visible in fleet_trace().
//
// Every test that arms tracing disarms and clears on the way out so the
// rings never leak across tests (the suite shares one process).
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "core/msptrsv.hpp"
#include "core/worker_pool.hpp"
#include "net/client.hpp"
#include "net/metrics.hpp"
#include "net/router.hpp"
#include "net/server.hpp"
#include "service/service_stats.hpp"
#include "support/trace.hpp"

namespace msptrsv {
namespace {

namespace trace = support::trace;
using core::SolveStatus;
using net::SolveClient;
using net::SolveServer;

sparse::CscMatrix trace_matrix(std::uint64_t seed, index_t n = 400) {
  return sparse::gen_layered_dag(n, 14, 6 * n, 0.5, seed);
}

std::vector<value_t> rhs_for(const sparse::CscMatrix& l, std::uint64_t seed) {
  return sparse::gen_rhs_for_solution(l, sparse::gen_solution(l.rows, seed));
}

/// Arms tracing for one test body and guarantees the disarm + ring clear
/// on every exit path (ASSERT failures included).
struct ArmedTracing {
  ArmedTracing() {
    trace::trace_clear();
    trace::trace_set_enabled(true);
  }
  ~ArmedTracing() {
    trace::trace_set_enabled(false);
    trace::trace_set_slow_threshold_us(0);
    trace::trace_clear();
  }
};

/// The blob image of an encoded frame (the wire bytes minus the u32
/// length prefix) -- what peek_frame consumes.
std::vector<std::uint8_t> blob_of(const std::vector<std::uint8_t>& wire) {
  return {wire.begin() + 4, wire.end()};
}

std::size_t count_occurrences(const std::string& hay,
                              const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t at = hay.find(needle); at != std::string::npos;
       at = hay.find(needle, at + needle.size())) {
    ++n;
  }
  return n;
}

// ---- trace ids -------------------------------------------------------------

TEST(TraceId, HexRoundTripsAndMalformedInputIsRejected) {
  const trace::TraceId id = trace::make_trace_id();
  EXPECT_TRUE(trace::trace_id_set(id));
  const std::string hex = trace::trace_id_hex(id);
  ASSERT_EQ(hex.size(), 32u);
  trace::TraceId back{};
  ASSERT_TRUE(trace::trace_id_parse(hex, &back));
  EXPECT_EQ(back, id);

  trace::TraceId scratch{};
  EXPECT_FALSE(trace::trace_id_parse("", &scratch));
  EXPECT_FALSE(trace::trace_id_parse("abc", &scratch));
  EXPECT_FALSE(trace::trace_id_parse(std::string(32, 'g'), &scratch));
  EXPECT_FALSE(trace::trace_id_parse(hex + "00", &scratch));

  // Fresh ids are distinct (the counter guarantees it within a process).
  EXPECT_NE(trace::make_trace_id(), trace::make_trace_id());
}

// ---- spans + collection ----------------------------------------------------

TEST(TraceSpans, NestedSpansCollectAsChromeTraceJsonUnderTheContextId) {
  if (!trace::trace_compiled()) GTEST_SKIP() << "MSPTRSV_TRACE=OFF build";
  ArmedTracing armed;
  const trace::TraceId id = trace::make_trace_id();
  {
    trace::ScopedTraceContext ctx(id);
    trace::TraceSpan outer("test.outer", "work", 3);
    ASSERT_TRUE(outer.active());
    {
      trace::TraceSpan inner("test.inner");
      ASSERT_TRUE(inner.active());
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  }
  const std::string json = trace::trace_collect_json(id);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"test.outer\""), std::string::npos);
  EXPECT_NE(json.find("\"test.inner\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find(trace::trace_id_hex(id)), std::string::npos);
  EXPECT_NE(json.find("\"work\":3"), std::string::npos);

  // A filter for a DIFFERENT id excludes this tree.
  const std::string other =
      trace::trace_collect_json(trace::make_trace_id());
  EXPECT_EQ(other.find("\"test.outer\""), std::string::npos);
}

TEST(TraceSpans, DisarmedProcessRecordsNothingAndSpansAreInactive) {
  trace::trace_clear();
  trace::trace_set_enabled(false);
  const std::size_t before = trace::trace_event_count();
  {
    trace::TraceSpan span("test.disarmed");
    EXPECT_FALSE(span.active());
    EXPECT_EQ(span.span_id(), 0u);
  }
  trace::trace_emit_here("test.disarmed_emit", 1, 2);
  EXPECT_EQ(trace::trace_event_count(), before);
}

TEST(TraceSpans, ExplicitSlowThresholdRetainsTheSpanTree) {
  if (!trace::trace_compiled()) GTEST_SKIP() << "MSPTRSV_TRACE=OFF build";
  ArmedTracing armed;
  trace::trace_set_slow_threshold_us(10.0);
  const trace::TraceId fast_id = trace::make_trace_id();
  const trace::TraceId slow_id = trace::make_trace_id();
  {
    trace::ScopedTraceContext ctx(fast_id);
    trace::TraceSpan span("test.fast");
  }
  trace::trace_note_completion(fast_id, 1.0);  // under threshold
  EXPECT_EQ(trace::trace_slow_count(), 0u);
  {
    trace::ScopedTraceContext ctx(slow_id);
    trace::TraceSpan span("test.slow");
  }
  trace::trace_note_completion(slow_id, 50.0);  // over: sampled
  ASSERT_EQ(trace::trace_slow_count(), 1u);
  const std::string slow = trace::trace_slow_json();
  EXPECT_NE(slow.find("\"test.slow\""), std::string::npos);
  EXPECT_EQ(slow.find("\"test.fast\""), std::string::npos);
}

// ---- determinism -----------------------------------------------------------

TEST(TraceDeterminism, SolvesAreBitForBitIdenticalTracingOnOrOff) {
  const sparse::CscMatrix l = trace_matrix(7);
  const std::vector<value_t> b = rhs_for(l, 1);
  for (const char* key : {"cpu-syncfree", "cpu-levelset"}) {
    const auto plan =
        core::SolverPlan::analyze(l, core::registry::options_for(key).value());
    ASSERT_TRUE(plan.ok()) << plan.message();

    trace::trace_set_enabled(false);
    const std::vector<value_t> off = plan->solve(b).value().x;
    std::vector<value_t> on;
    {
      ArmedTracing armed;
      trace::ScopedTraceContext ctx(trace::make_trace_id());
      on = plan->solve(b).value().x;
    }
    EXPECT_EQ(on, off) << key;  // exact, not approximate
  }
}

// ---- per-phase histograms under concurrency --------------------------------

TEST(TracePhases, ConcurrentPhaseWritersAreAbsorbedExactly) {
  service::ServiceStats stats;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 1000;
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&stats] {
      trace::PhaseBreakdown phases;
      phases.queue_us = 100.0;
      phases.coalesce_us = 50.0;
      phases.claim_us = 10.0;
      phases.pack_us = 20.0;
      phases.kernel_us = 400.0;
      phases.unpack_us = 20.0;
      for (int i = 0; i < kPerThread; ++i) {
        stats.on_phases(phases);
        stats.on_reply_phase(30.0);
      }
    });
  }
  for (std::thread& w : writers) w.join();

  const service::ServiceStatsSnapshot snap = stats.snapshot();
  constexpr std::uint64_t kTotal =
      static_cast<std::uint64_t>(kThreads) * kPerThread;
  for (std::size_t p = 0; p < trace::kNumPhases; ++p) {
    EXPECT_EQ(snap.phase_hist[p].count, kTotal)
        << trace::kPhaseNames[p];
  }
  // Exact sums: every recorded value is an integer number of us.
  EXPECT_EQ(snap.phase_hist[0].sum_us, kTotal * 100);  // queue
  EXPECT_EQ(snap.phase_hist[4].sum_us, kTotal * 400);  // kernel
  EXPECT_EQ(snap.phase_hist[6].sum_us, kTotal * 30);   // reply
  // Quantiles land in the right decade (HDR buckets are ~3% wide).
  EXPECT_NEAR(snap.phase_hist[4].quantile(0.5), 400.0, 400.0 * 0.1);
}

// ---- wire format -----------------------------------------------------------

TEST(TraceWire, SolveFrameTraceIdIsAnOptionalBackwardCompatibleTail) {
  net::SolveFrame frame;
  frame.request_id = 9;
  frame.plan_id = 4;
  frame.num_rhs = 1;
  frame.rhs = {1.0, 2.0, 3.0};

  const auto legacy = blob_of(net::encode_solve(frame));
  frame.trace_id = trace::make_trace_id();
  const auto traced = blob_of(net::encode_solve(frame));
  // The tail costs exactly the id; an untraced frame is byte-identical
  // to the pre-trace grammar.
  EXPECT_EQ(traced.size(), legacy.size() + sizeof(trace::TraceId));

  auto head = net::peek_frame(traced);
  ASSERT_TRUE(head.ok());
  const auto decoded = net::decode_solve(head.value());
  ASSERT_TRUE(decoded.ok()) << decoded.message();
  EXPECT_EQ(decoded.value().trace_id, frame.trace_id);
  EXPECT_EQ(decoded.value().rhs, frame.rhs);

  auto lhead = net::peek_frame(legacy);
  ASSERT_TRUE(lhead.ok());
  const auto undecorated = net::decode_solve(lhead.value());
  ASSERT_TRUE(undecorated.ok()) << undecorated.message();
  EXPECT_FALSE(trace::trace_id_set(undecorated.value().trace_id));
}

TEST(TraceWire, SolveOkPhasesTailRoundTripsAndLegacyDecodesWithout) {
  net::SolveOkFrame ok;
  ok.request_id = 3;
  ok.server_us = 1234.0;
  ok.x = {4.0, 5.0};
  const auto legacy = blob_of(net::encode_solve_ok(ok));
  ok.has_phases = true;
  ok.phases.queue_us = 10.0;
  ok.phases.kernel_us = 200.0;
  ok.phases.reply_us = 5.0;
  const auto with = blob_of(net::encode_solve_ok(ok));
  EXPECT_EQ(with.size(), legacy.size() + trace::kNumPhases * sizeof(double));

  auto head = net::peek_frame(with);
  ASSERT_TRUE(head.ok());
  const auto decoded = net::decode_solve_ok(head.value());
  ASSERT_TRUE(decoded.ok()) << decoded.message();
  ASSERT_TRUE(decoded.value().has_phases);
  EXPECT_EQ(decoded.value().phases.queue_us, 10.0);
  EXPECT_EQ(decoded.value().phases.kernel_us, 200.0);
  EXPECT_EQ(decoded.value().phases.reply_us, 5.0);

  auto lhead = net::peek_frame(legacy);
  ASSERT_TRUE(lhead.ok());
  const auto old = net::decode_solve_ok(lhead.value());
  ASSERT_TRUE(old.ok());
  EXPECT_FALSE(old.value().has_phases);
}

TEST(TraceWire, TraceDumpFrameRoundTripsAndBadFilterIsTyped) {
  net::TraceDumpFrame dump;
  dump.request_id = 11;
  dump.filter = trace::trace_id_hex(trace::make_trace_id());
  dump.include_slow = false;
  const auto dump_blob = blob_of(net::encode_trace_dump(dump));
  auto head = net::peek_frame(dump_blob);
  ASSERT_TRUE(head.ok());
  EXPECT_EQ(head.value().type, net::FrameType::kTraceDump);
  const auto decoded = net::decode_trace_dump(head.value());
  ASSERT_TRUE(decoded.ok()) << decoded.message();
  EXPECT_EQ(decoded.value().filter, dump.filter);
  EXPECT_FALSE(decoded.value().include_slow);

  net::TraceDumpFrame bad;
  bad.request_id = 12;
  bad.filter = "not-a-trace-id";
  const auto bad_blob = blob_of(net::encode_trace_dump(bad));
  auto bad_head = net::peek_frame(bad_blob);
  ASSERT_TRUE(bad_head.ok());
  const auto rejected = net::decode_trace_dump(bad_head.value());
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status(), SolveStatus::kProtocolError);

  net::TraceDumpOkFrame reply;
  reply.request_id = 11;
  reply.json = "{\"traceEvents\":[]}";
  reply.slow_json = "{\"traceEvents\":[]}";
  const auto reply_blob = blob_of(net::encode_trace_dump_ok(reply));
  auto rhead = net::peek_frame(reply_blob);
  ASSERT_TRUE(rhead.ok());
  const auto rdec = net::decode_trace_dump_ok(rhead.value());
  ASSERT_TRUE(rdec.ok());
  EXPECT_EQ(rdec.value().json, reply.json);
  EXPECT_EQ(rdec.value().slow_json, reply.slow_json);
}

// ---- prometheus rendering --------------------------------------------------

TEST(TraceMetrics, PrometheusRendersCacheCountersAndPhaseSeries) {
  net::WireStats s;
  s.cache_hits = 7;
  s.cache_misses = 3;
  s.cache_evictions = 1;
  s.cache_disk_hits = 2;
  service::LatencyHistogram kernel_hist;
  kernel_hist.record(250.0);
  kernel_hist.record(300.0);
  s.phases[4] = kernel_hist.snapshot();  // "kernel"

  const std::string text = net::render_prometheus(s, "test");
  EXPECT_NE(text.find("msptrsv_plan_cache_hits_total{instance=\"test\"} 7"),
            std::string::npos);
  EXPECT_NE(text.find("msptrsv_plan_cache_misses_total{instance=\"test\"} 3"),
            std::string::npos);
  EXPECT_NE(
      text.find("msptrsv_plan_cache_disk_hits_total{instance=\"test\"} 2"),
      std::string::npos);
  EXPECT_NE(text.find("msptrsv_solve_phase_seconds_count{instance=\"test\","
                      "phase=\"kernel\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("phase=\"kernel\",quantile=\"0.5\""),
            std::string::npos);
  // Every phase appears even when empty (dashboards can rely on the set).
  for (const char* name : trace::kPhaseNames) {
    EXPECT_NE(text.find("phase=\"" + std::string(name) + "\""),
              std::string::npos)
        << name;
  }
}

// ---- end-to-end: wire -> queue -> gang claim -> kernel -> reply ------------

TEST(TraceEndToEnd, ClientTraceIdYieldsOneStitchedServerSpanTree) {
  if (!trace::trace_compiled()) GTEST_SKIP() << "MSPTRSV_TRACE=OFF build";
  SolveServer server;
  ASSERT_TRUE(server.start().ok());
  const sparse::CscMatrix l = trace_matrix(31);
  const std::vector<value_t> b = rhs_for(l, 2);

  net::ClientOptions copt;
  copt.port = server.port();
  SolveClient client(copt);
  // cpu-levelset so the kernel emits PER-LEVEL spans (the acceptance
  // shape: wire -> queue -> claim -> >=1 kernel.level -> reply).
  const auto handle = client.open(l, "cpu-levelset");
  ASSERT_TRUE(handle.ok()) << handle.message();

  ArmedTracing armed;
  trace::trace_set_slow_threshold_us(0.001);  // retain every completion
  const trace::TraceId id = trace::make_trace_id();
  {
    trace::ScopedTraceContext ctx(id);
    const auto x = client.solve(handle.value(), b);
    ASSERT_TRUE(x.ok()) << x.message();
  }

  const auto dump = client.trace_dump(trace::trace_id_hex(id));
  ASSERT_TRUE(dump.ok()) << dump.message();
  const std::string& json = dump.value().json;
  // Valid Chrome trace-event envelope, filtered to exactly this request.
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_EQ(json.back(), '}');
  const std::string hex = trace::trace_id_hex(id);
  // One span per layer, all stitched by the SAME trace id. The gang
  // claim only happens when the shared pool HAS claimable workers -- on
  // a single-core host run_parallel takes the solo fast path (no claim,
  // by design), so pool.claim is required only where it can exist.
  std::vector<std::string> required = {
      "client.solve",     "net.rx",       "service.queue",
      "service.coalesce", "service.execute", "kernel.level",
      "net.reply"};
  if (core::SharedWorkerPool::instance().threads() > 1) {
    required.push_back("pool.claim");
  }
  for (const std::string& span : required) {
    EXPECT_NE(json.find("\"" + span + "\""), std::string::npos) << span;
  }
  const std::size_t events = count_occurrences(json, "\"name\":");
  EXPECT_EQ(count_occurrences(json, hex), events)
      << "every filtered event carries the request's trace id";
  EXPECT_GE(count_occurrences(json, "\"kernel.level\""), 1u);

  // The slow sampler (threshold ~0) retained the tree too.
  EXPECT_GE(trace::trace_slow_count(), 1u);
  EXPECT_NE(dump.value().slow_json.find(hex), std::string::npos);

  // Phase attribution reached the histograms and the Prometheus text.
  const auto stats = client.stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_GE(stats.value().phases[4].count, 1u);  // kernel
  EXPECT_GE(stats.value().phases[6].count, 1u);  // reply
  const auto metrics = client.metrics();
  ASSERT_TRUE(metrics.ok());
  EXPECT_NE(metrics.value().find("msptrsv_solve_phase_seconds"),
            std::string::npos);
  server.stop();
}

TEST(TraceEndToEnd, SolvesAreBitForBitOverTheWireTracingOnOrOff) {
  SolveServer server;
  ASSERT_TRUE(server.start().ok());
  const sparse::CscMatrix l = trace_matrix(37);
  const std::vector<value_t> b = rhs_for(l, 3);

  net::ClientOptions copt;
  copt.port = server.port();
  SolveClient client(copt);
  const auto handle = client.open(l, "cpu-syncfree");
  ASSERT_TRUE(handle.ok()) << handle.message();

  trace::trace_set_enabled(false);
  const auto off = client.solve(handle.value(), b);
  ASSERT_TRUE(off.ok());
  std::vector<value_t> on;
  {
    ArmedTracing armed;
    trace::ScopedTraceContext ctx(trace::make_trace_id());
    const auto traced = client.solve(handle.value(), b);
    ASSERT_TRUE(traced.ok());
    on = traced.value();
  }
  EXPECT_EQ(on, off.value());
  server.stop();
}

TEST(TraceEndToEnd, TraceIdSurvivesInjectedOverloadRetries) {
  if (!trace::trace_compiled()) GTEST_SKIP() << "MSPTRSV_TRACE=OFF build";
  net::ServerOptions sopt;
  sopt.inject_status = SolveStatus::kOverloaded;
  sopt.inject_count = 2;
  SolveServer server(sopt);
  ASSERT_TRUE(server.start().ok());
  const sparse::CscMatrix l = trace_matrix(41);
  const std::vector<value_t> b = rhs_for(l, 4);

  net::ClientOptions copt;
  copt.port = server.port();
  copt.retry.max_attempts = 4;
  copt.retry.initial_backoff = std::chrono::microseconds(100);
  SolveClient client(copt);
  const auto handle = client.open(l, "cpu-syncfree");
  ASSERT_TRUE(handle.ok());

  ArmedTracing armed;
  const trace::TraceId id = trace::make_trace_id();
  {
    trace::ScopedTraceContext ctx(id);
    const auto x = client.solve(handle.value(), b);
    ASSERT_TRUE(x.ok()) << x.message();
  }
  EXPECT_EQ(client.metrics_local().retries, 2u);

  // Every attempt -- the two rejected ones and the served one -- arrived
  // under the SAME id: the server saw it on each rx.
  const auto dump = client.trace_dump(trace::trace_id_hex(id));
  ASSERT_TRUE(dump.ok()) << dump.message();
  EXPECT_GE(count_occurrences(dump.value().json, "\"net.rx\""), 1u);
  EXPECT_GE(count_occurrences(dump.value().json, "\"kernel."), 1u);
  server.stop();
}

// ---- fleet: probe RTT + stitched cross-shard traces ------------------------

TEST(TraceFleet, ProbeRttGaugeAndFleetTraceStitchAcrossFailover) {
  if (!trace::trace_compiled()) GTEST_SKIP() << "MSPTRSV_TRACE=OFF build";
  const std::string dir =
      (std::filesystem::temp_directory_path() /
       ("msptrsv_trace_fleet_" +
        std::to_string(
            std::chrono::steady_clock::now().time_since_epoch().count())))
          .string();
  std::filesystem::create_directories(dir);

  net::ServerOptions sopt;
  sopt.service.cache_dir = dir;  // the fleet-shared warm tier
  SolveServer s0(sopt), s1(sopt);
  ASSERT_TRUE(s0.start().ok());
  ASSERT_TRUE(s1.start().ok());
  SolveServer* servers[2] = {&s0, &s1};

  net::RouterOptions ropt;
  ropt.endpoints = {{"127.0.0.1", s0.port()}, {"127.0.0.1", s1.port()}};
  ropt.breaker_failure_threshold = 1;
  ropt.breaker_cooldown = std::chrono::minutes(10);
  ropt.client.retry.max_attempts = 2;
  ropt.client.retry.initial_backoff = std::chrono::microseconds(500);
  ropt.client.retry.max_backoff = std::chrono::microseconds(2000);
  net::Router router(ropt);

  // Probe RTT: measured by probe_now, reported per shard, rendered as a
  // gauge in the fleet scrape.
  ASSERT_EQ(router.probe_now(), 2u);
  for (const net::ShardStatus& st : router.fleet_status()) {
    EXPECT_GT(st.probe_rtt_us, 0.0);
  }
  {
    const auto metrics = router.fleet_metrics();
    ASSERT_TRUE(metrics.ok()) << metrics.message();
    EXPECT_EQ(count_occurrences(metrics.value(), "msptrsv_shard_probe_rtt_us{"),
              2u);
  }

  const sparse::CscMatrix l = trace_matrix(53);
  const std::vector<value_t> b = rhs_for(l, 5);
  const auto h = router.open(l, "cpu-syncfree");
  ASSERT_TRUE(h.ok()) << h.message();
  const std::size_t home = h.value().shard;
  const std::size_t backup = 1 - home;

  ArmedTracing armed;
  // Baseline traced solve on the home shard, then kill it and solve
  // again: failover re-homes via the shared blob dir, and the SECOND id
  // must surface from the backup in the stitched fleet trace.
  const trace::TraceId before_id = trace::make_trace_id();
  {
    trace::ScopedTraceContext ctx(before_id);
    const auto r = router.solve(h.value(), b);
    ASSERT_TRUE(r.ok()) << r.message();
  }
  servers[home]->stop();
  const trace::TraceId failover_id = trace::make_trace_id();
  std::vector<value_t> failed_over;
  {
    trace::ScopedTraceContext ctx(failover_id);
    const auto r = router.solve(h.value(), b);
    ASSERT_TRUE(r.ok()) << r.message();
    failed_over = r.value();
  }
  EXPECT_GE(router.shard_client(backup).metrics_local().failovers, 1u);

  std::size_t reachable = 0;
  const auto fleet =
      router.fleet_trace(trace::trace_id_hex(failover_id), &reachable);
  ASSERT_TRUE(fleet.ok()) << fleet.message();
  EXPECT_EQ(reachable, 1u);  // the home shard is dark, reported as such
  EXPECT_EQ(fleet.value().rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(fleet.value().find(trace::trace_id_hex(failover_id)),
            std::string::npos);
  EXPECT_NE(fleet.value().find("\"net.rx\""), std::string::npos);
  // Events live on the answering shard's own pid lane (shard index + 1).
  EXPECT_NE(fleet.value().find("\"pid\":" + std::to_string(backup + 1)),
            std::string::npos);

  // Unfiltered fleet trace still answers and carries the earlier id only
  // if the backup saw it (it did not) -- the filter semantics hold.
  const auto full = router.fleet_trace();
  ASSERT_TRUE(full.ok());

  servers[backup]->stop();
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace msptrsv
