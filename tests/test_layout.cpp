// The interleaved RHS layout (RhsLayout::kInterleaved) and the NUMA
// placement knobs are PURE performance features: every contract here says
// "same bits". The panel transposes change addresses, never the per-rhs
// floating-point operation order, so an interleaved fused batch must equal
// the column-major one -- and both must equal looped single solves -- on
// every host backend, at any thread count, under value refreshes, and
// right after a mid-solve abort. Placement (pinning, first-touch,
// page interleaving) moves bytes between nodes, never operations, so any
// NumaPolicy must reproduce kNone's bits exactly.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "core/msptrsv.hpp"
#include "core/reference.hpp"
#include "core/workspace.hpp"
#include "support/failpoint.hpp"
#include "support/numa.hpp"

namespace msptrsv {
namespace {

using core::RhsLayout;

sparse::CscMatrix layered() {
  return sparse::gen_layered_dag(1200, 30, 8400, 0.4, 91);
}

std::vector<value_t> batch_for(const sparse::CscMatrix& l, index_t k,
                               std::uint64_t seed) {
  std::vector<value_t> out;
  for (index_t j = 0; j < k; ++j) {
    const std::vector<value_t> b = sparse::gen_rhs_for_solution(
        l, sparse::gen_solution(l.rows, seed + static_cast<std::uint64_t>(j)));
    out.insert(out.end(), b.begin(), b.end());
  }
  return out;
}

core::SolveOptions host_opts(const char* key, RhsLayout layout,
                             int threads = 2) {
  core::SolveOptions o = core::registry::options_for(key).value();
  o.cpu_threads = threads;
  o.rhs_layout = layout;
  return o;
}

constexpr const char* kHostBackends[] = {"serial", "cpu-levelset",
                                         "cpu-syncfree"};

// ---- layout resolution -----------------------------------------------------

TEST(RhsLayoutResolve, AutoPicksInterleavedOnlyForParallelHostBackends) {
  using core::Backend;
  EXPECT_EQ(core::resolve_rhs_layout(RhsLayout::kAuto, Backend::kCpuLevelSet),
            RhsLayout::kInterleaved);
  EXPECT_EQ(core::resolve_rhs_layout(RhsLayout::kAuto, Backend::kCpuSyncFree),
            RhsLayout::kInterleaved);
  // The serial sweep is push-based and already unit-stride; auto leaves it
  // column-major (interleaving it measured ~2x slower).
  EXPECT_EQ(core::resolve_rhs_layout(RhsLayout::kAuto, Backend::kSerial),
            RhsLayout::kColumnMajor);
  EXPECT_EQ(core::resolve_rhs_layout(RhsLayout::kAuto, Backend::kMgUnified),
            RhsLayout::kColumnMajor);
}

TEST(RhsLayoutResolve, ExplicitRequestsHonoredOnHostClampedOnSim) {
  using core::Backend;
  // Explicit beats auto on every host backend, serial included.
  EXPECT_EQ(
      core::resolve_rhs_layout(RhsLayout::kInterleaved, Backend::kSerial),
      RhsLayout::kInterleaved);
  EXPECT_EQ(
      core::resolve_rhs_layout(RhsLayout::kColumnMajor, Backend::kCpuSyncFree),
      RhsLayout::kColumnMajor);
  // The simulated kernels have no panel path: clamped, not rejected.
  EXPECT_EQ(
      core::resolve_rhs_layout(RhsLayout::kInterleaved, Backend::kGpuLevelSet),
      RhsLayout::kColumnMajor);
  // Never kAuto out.
  for (const core::registry::BackendEntry& e : core::registry::backends()) {
    EXPECT_NE(core::resolve_rhs_layout(RhsLayout::kAuto, e.backend),
              RhsLayout::kAuto);
  }
}

TEST(RhsLayoutResolve, ResolvedLayoutIsVisibleOnThePlan) {
  const sparse::CscMatrix l = layered();
  const auto inter = core::SolverPlan::analyze(
      l, host_opts("cpu-levelset", RhsLayout::kAuto));
  ASSERT_TRUE(inter.ok());
  EXPECT_EQ(inter->rhs_layout(), RhsLayout::kInterleaved);
  const auto col = core::SolverPlan::analyze(
      l, host_opts("cpu-levelset", RhsLayout::kColumnMajor));
  ASSERT_TRUE(col.ok());
  EXPECT_EQ(col->rhs_layout(), RhsLayout::kColumnMajor);
}

// ---- panel transposes ------------------------------------------------------

TEST(PanelTranspose, PackUnpackRoundTripsAtAnyWidth) {
  const index_t n = 37;
  for (const index_t k : {index_t{1}, index_t{2}, index_t{3}, index_t{8}}) {
    std::vector<value_t> col(static_cast<std::size_t>(n) *
                             static_cast<std::size_t>(k));
    for (std::size_t i = 0; i < col.size(); ++i) {
      col[i] = static_cast<value_t>(i) * 0.5 - 3.0;
    }
    std::vector<value_t> panel(col.size(), -1.0);
    core::pack_interleaved(col, n, k, panel.data());
    // Spot-check the layout contract: entry i of rhs r at [i*k + r].
    EXPECT_EQ(panel[static_cast<std::size_t>(5) * k],
              col[5]);  // rhs 0, component 5
    std::vector<value_t> back(col.size(), -2.0);
    core::unpack_interleaved(panel.data(), n, k, back);
    EXPECT_EQ(back, col);
  }
}

// ---- bit-for-bit equality across layouts -----------------------------------

TEST(InterleavedLayout, FusedBatchMatchesColumnMajorAndLoopedOnEveryBackend) {
  const sparse::CscMatrix l = layered();
  const index_t n = l.rows;
  for (const char* key : kHostBackends) {
    for (const index_t k : {index_t{2}, index_t{3}, index_t{16}}) {
      SCOPED_TRACE(std::string(key) + " k=" + std::to_string(k));
      const std::vector<value_t> batch = batch_for(l, k, 500);
      const auto inter = core::SolverPlan::analyze(
          l, host_opts(key, RhsLayout::kInterleaved));
      const auto col = core::SolverPlan::analyze(
          l, host_opts(key, RhsLayout::kColumnMajor));
      ASSERT_TRUE(inter.ok() && col.ok());

      const auto ri = inter->solve_batch(batch, k);
      const auto rc = col->solve_batch(batch, k);
      ASSERT_TRUE(ri.ok() && rc.ok());
      EXPECT_EQ(ri.value().x, rc.value().x);

      // The public bit-for-bit-vs-looped guarantee holds through the
      // panel: each batch column equals the single solve of that rhs.
      for (index_t r = 0; r < k; ++r) {
        const auto single = inter->solve(
            std::span<const value_t>(batch).subspan(
                static_cast<std::size_t>(r) * static_cast<std::size_t>(n),
                static_cast<std::size_t>(n)));
        ASSERT_TRUE(single.ok());
        const std::vector<value_t> column(
            ri.value().x.begin() +
                static_cast<std::ptrdiff_t>(static_cast<std::size_t>(r) *
                                            static_cast<std::size_t>(n)),
            ri.value().x.begin() +
                static_cast<std::ptrdiff_t>(static_cast<std::size_t>(r + 1) *
                                            static_cast<std::size_t>(n)));
        EXPECT_EQ(column, single.value().x) << "rhs " << r;
      }
    }
  }
}

TEST(InterleavedLayout, UpperPlansMatchAcrossLayouts) {
  const sparse::CscMatrix u = sparse::transpose(layered());
  const index_t k = 4;
  const std::vector<value_t> batch = batch_for(u, k, 700);
  for (const char* key : kHostBackends) {
    SCOPED_TRACE(key);
    const auto inter = core::SolverPlan::analyze_upper(
        sparse::CscMatrix(u), host_opts(key, RhsLayout::kInterleaved));
    const auto col = core::SolverPlan::analyze_upper(
        sparse::CscMatrix(u), host_opts(key, RhsLayout::kColumnMajor));
    ASSERT_TRUE(inter.ok() && col.ok());
    const auto ri = inter->solve_batch(batch, k);
    const auto rc = col->solve_batch(batch, k);
    ASSERT_TRUE(ri.ok() && rc.ok());
    EXPECT_EQ(ri.value().x, rc.value().x);
  }
}

TEST(InterleavedLayout, UpdateValuesRefreshKeepsLayoutsInAgreement) {
  const sparse::CscMatrix l = layered();
  const index_t k = 8;
  for (const char* key : kHostBackends) {
    SCOPED_TRACE(key);
    auto inter = core::SolverPlan::analyze(
                     l, host_opts(key, RhsLayout::kInterleaved))
                     .value();
    auto col = core::SolverPlan::analyze(
                   l, host_opts(key, RhsLayout::kColumnMajor))
                   .value();
    sparse::CscMatrix scaled = l;
    for (value_t& v : scaled.val) v *= 1.75;
    ASSERT_TRUE(inter.update_values(scaled).ok());
    ASSERT_TRUE(col.update_values(scaled).ok());
    const std::vector<value_t> batch = batch_for(scaled, k, 900);
    const auto ri = inter.solve_batch(batch, k);
    const auto rc = col.solve_batch(batch, k);
    ASSERT_TRUE(ri.ok() && rc.ok());
    EXPECT_EQ(ri.value().x, rc.value().x);
  }
}

TEST(InterleavedLayout, ThreadCountDoesNotChangeTheBits) {
  // The panel kernels keep the pull-based deterministic summation order,
  // so gang width is unobservable in the results -- the same guarantee
  // the column-major kernels ship.
  const sparse::CscMatrix l = layered();
  const index_t k = 8;
  const std::vector<value_t> batch = batch_for(l, k, 1100);
  for (const char* key : {"cpu-levelset", "cpu-syncfree"}) {
    SCOPED_TRACE(key);
    const auto one = core::SolverPlan::analyze(
        l, host_opts(key, RhsLayout::kInterleaved, 1));
    const auto four = core::SolverPlan::analyze(
        l, host_opts(key, RhsLayout::kInterleaved, 4));
    ASSERT_TRUE(one.ok() && four.ok());
    EXPECT_EQ(one->solve_batch(batch, k).value().x,
              four->solve_batch(batch, k).value().x);
  }
}

// ---- abort + reuse under the panel path ------------------------------------

class LayoutCancelFixture : public ::testing::Test {
 protected:
  void TearDown() override { support::failpoint_clear_all(); }
};

TEST_F(LayoutCancelFixture, MidSolveAbortLeavesThePanelWorkspaceReusable) {
  if (!support::failpoints_compiled()) GTEST_SKIP();
  const sparse::CscMatrix l = layered();
  const index_t k = 8;
  const std::vector<value_t> batch = batch_for(l, k, 1300);
  const auto plan = core::SolverPlan::analyze(
      l, host_opts("cpu-levelset", RhsLayout::kInterleaved));
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->rhs_layout(), RhsLayout::kInterleaved);
  const std::vector<value_t> good = plan->solve_batch(batch, k).value().x;

  // Park the interleaved kernel at a level boundary, fire the flag,
  // release: the abort unwinds through the panel path and the next batch
  // on the SAME leased workspace (and its cached panels) must be exact.
  const std::uint64_t base = support::failpoint_hits("kernel.level");
  ASSERT_TRUE(support::failpoint_set("kernel.level", "pause*1"));
  core::CancelSource src;
  core::Expected<core::SolveResult> result(core::SolveStatus::kOk, "");
  std::thread solver(
      [&] { result = plan->solve_batch(batch, k, src.token()); });
  ASSERT_TRUE(support::failpoint_wait_hits("kernel.level", base + 1, 10000));
  src.cancel();
  support::failpoint_clear("kernel.level");
  solver.join();

  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status(), core::SolveStatus::kOverloaded);
  const auto after = plan->solve_batch(batch, k);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.value().x, good);
}

// ---- workspace scratch contracts -------------------------------------------

TEST(WorkspaceScratch, GatherSlicesAreCacheLineDisjoint) {
  core::SolveWorkspace ws(3);
  for (const index_t k : {index_t{1}, index_t{5}, index_t{16}, index_t{33}}) {
    const value_t* base = ws.gather_scratch(k);
    ASSERT_NE(base, nullptr);
    // Stride padded to a 64-byte multiple, base 64-byte aligned: no two
    // threads' accumulator slices can ever share a line.
    EXPECT_EQ((ws.gather_stride() * sizeof(value_t)) % 64u, 0u) << "k=" << k;
    EXPECT_GE(ws.gather_stride(), static_cast<std::size_t>(k));
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(base) % 64u, 0u);
  }
}

TEST(WorkspaceScratch, PanelsAreAlignedAndStable) {
  core::SolveWorkspace ws(2);
  value_t* b1 = ws.panel_b(1000);
  value_t* x1 = ws.panel_x(1000);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b1) % 64u, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(x1) % 64u, 0u);
  // Steady state reuses the allocation; growth re-allocates.
  EXPECT_EQ(ws.panel_b(900), b1);
  EXPECT_NE(ws.panel_b(4000), nullptr);
}

// ---- NUMA placement --------------------------------------------------------

TEST(Numa, TopologyAlwaysHasAtLeastOneNodeWithCpus) {
  const support::NumaTopology& topo = support::numa_topology();
  ASSERT_GE(topo.num_nodes(), 1);
  for (const auto& cpus : topo.node_cpus) EXPECT_FALSE(cpus.empty());
}

TEST(Numa, WorkerPlacementPolicies) {
  using support::NumaPolicy;
  // kNone never pins.
  EXPECT_EQ(support::numa_cpu_for_worker(NumaPolicy::kNone, 0), -1);
  EXPECT_EQ(support::numa_cpu_for_worker(NumaPolicy::kNone, 7), -1);
  // Real policies return a CPU from the topology for in-range workers and
  // -1 (stay schedulable everywhere) once the pool oversubscribes.
  const support::NumaTopology& topo = support::numa_topology();
  int total_cpus = 0;
  for (const auto& cpus : topo.node_cpus) {
    total_cpus += static_cast<int>(cpus.size());
  }
  for (const NumaPolicy policy : {NumaPolicy::kCompact, NumaPolicy::kSpread}) {
    for (int w = 0; w < total_cpus; ++w) {
      const int cpu = support::numa_cpu_for_worker(policy, w);
      bool found = false;
      for (const auto& cpus : topo.node_cpus) {
        for (const int c : cpus) found |= (c == cpu);
      }
      EXPECT_TRUE(found) << "worker " << w;
    }
    EXPECT_EQ(support::numa_cpu_for_worker(policy, total_cpus), -1);
  }
}

TEST(Numa, PinRefusalIsAHintNotAnError) {
  EXPECT_FALSE(support::pin_current_thread(-1));
  EXPECT_FALSE(support::pin_current_thread(1 << 20));  // no such CPU
}

TEST(Numa, InterleaveHintNeverBreaksTheBuffer) {
  std::vector<double> buf(16384, 1.5);
  // Single-node machines and refused mbinds return false; either way the
  // bytes are untouched.
  (void)support::interleave_pages(buf.data(), buf.size() * sizeof(double));
  for (const double v : buf) ASSERT_EQ(v, 1.5);
}

TEST(Numa, PlacementPoliciesReproduceTheBitsExactly) {
  const sparse::CscMatrix l = layered();
  const index_t k = 8;
  const std::vector<value_t> batch = batch_for(l, k, 1500);
  for (const char* key : {"cpu-levelset", "cpu-syncfree"}) {
    SCOPED_TRACE(key);
    core::SolveOptions none = host_opts(key, RhsLayout::kInterleaved);
    const std::vector<value_t> expect =
        core::SolverPlan::analyze(l, none)->solve_batch(batch, k).value().x;
    for (const support::NumaPolicy policy :
         {support::NumaPolicy::kCompact, support::NumaPolicy::kSpread}) {
      core::SolveOptions o = none;
      o.numa_policy = policy;
      const auto plan = core::SolverPlan::analyze(l, o);
      ASSERT_TRUE(plan.ok());
      EXPECT_EQ(plan->solve_batch(batch, k).value().x, expect);
      // Placement survives value refreshes (the row form is re-hinted).
      EXPECT_TRUE(plan->solve(std::span<const value_t>(batch).first(
                                  static_cast<std::size_t>(l.rows)))
                      .ok());
    }
  }
}

}  // namespace
}  // namespace msptrsv
