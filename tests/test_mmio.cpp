// Matrix Market reader/writer.
#include <gtest/gtest.h>

#include <sstream>

#include "sparse/generators.hpp"
#include "sparse/mmio.hpp"
#include "support/contracts.hpp"

namespace msptrsv::sparse {
namespace {

TEST(Mmio, ReadsGeneralRealCoordinate) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "% a comment\n"
      "3 3 2\n"
      "1 1 2.5\n"
      "3 2 -1.0\n");
  const CooMatrix coo = read_matrix_market(in);
  EXPECT_EQ(coo.rows, 3);
  EXPECT_EQ(coo.nnz(), 2);
  EXPECT_EQ(coo.entries[0].row, 0);
  EXPECT_EQ(coo.entries[0].col, 0);
  EXPECT_DOUBLE_EQ(coo.entries[1].value, -1.0);
}

TEST(Mmio, ExpandsSymmetricEntries) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real symmetric\n"
      "2 2 2\n"
      "1 1 1.0\n"
      "2 1 5.0\n");
  const CooMatrix coo = read_matrix_market(in);
  // Off-diagonal mirrored, diagonal not duplicated.
  EXPECT_EQ(coo.nnz(), 3);
}

TEST(Mmio, ExpandsSkewSymmetricWithNegation) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real skew-symmetric\n"
      "3 3 1\n"
      "2 1 4.0\n");
  CooMatrix coo = read_matrix_market(in);
  coo.normalize();
  ASSERT_EQ(coo.nnz(), 2);
  // normalize() sorts column-major: (1,0) in column 0 precedes (0,1).
  EXPECT_DOUBLE_EQ(coo.entries[0].value, 4.0);   // (1,0)
  EXPECT_DOUBLE_EQ(coo.entries[1].value, -4.0);  // (0,1)
}

TEST(Mmio, PatternEntriesDefaultToOne) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "2 2 1\n"
      "2 2\n");
  const CooMatrix coo = read_matrix_market(in);
  ASSERT_EQ(coo.nnz(), 1);
  EXPECT_DOUBLE_EQ(coo.entries[0].value, 1.0);
}

TEST(Mmio, RejectsMissingBanner) {
  std::istringstream in("3 3 0\n");
  EXPECT_THROW(read_matrix_market(in), support::PreconditionError);
}

TEST(Mmio, RejectsOutOfRangeIndex) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 1\n"
      "3 1 1.0\n");
  EXPECT_THROW(read_matrix_market(in), support::PreconditionError);
}

TEST(Mmio, RejectsTruncatedFile) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 2\n"
      "1 1 1.0\n");
  EXPECT_THROW(read_matrix_market(in), support::PreconditionError);
}

TEST(Mmio, WriteReadRoundTripPreservesEverything) {
  const CscMatrix m = gen_layered_dag(300, 12, 1500, 0.5, 33);
  std::stringstream buf;
  write_matrix_market(buf, m);
  const CscMatrix back = csc_from_coo(read_matrix_market(buf));
  EXPECT_TRUE(identical(m, back));
}

TEST(Mmio, FileRoundTrip) {
  const CscMatrix m = gen_banded(100, 5, 0.6, 3);
  const std::string path = testing::TempDir() + "/msptrsv_roundtrip.mtx";
  write_matrix_market_file(path, m);
  const CscMatrix back = csc_from_coo(read_matrix_market_file(path));
  EXPECT_TRUE(identical(m, back));
}

TEST(Mmio, MissingFileThrows) {
  EXPECT_THROW(read_matrix_market_file("/nonexistent/path.mtx"),
               support::PreconditionError);
}

}  // namespace
}  // namespace msptrsv::sparse
