// Property test for the level coarsener (sparse/coarsen_levels): the task
// graph is what the cpu-taskgraph backend's claim/delivery protocol runs
// on, so its structural invariants are load-bearing for both correctness
// (exactly-once row coverage, dependency order) and liveness (ascending
// task order must be topological, or the ascending claim deadlocks).
//
// The sweep runs the full invariant suite over 200 seeded matrices drawn
// from every generator family at several coarsening thresholds, so chains,
// fans, grids, scale-free tails, and degenerate shapes all pass through
// the same checks.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "sparse/generators.hpp"
#include "sparse/level_analysis.hpp"
#include "sparse/task_graph.hpp"

namespace msptrsv::sparse {
namespace {

/// Runs every coarsener invariant against one matrix/options pair. `what`
/// tags failures with the generating case so a seed sweep failure is
/// reproducible in isolation.
void check_invariants(const CscMatrix& lower, const CoarsenOptions& opts,
                      const std::string& what) {
  SCOPED_TRACE(what);
  const LevelAnalysis levels = analyze_levels(lower);
  const TaskGraph g = coarsen_levels(lower, levels, opts);
  const auto n = static_cast<std::size_t>(lower.rows);

  ASSERT_EQ(g.n, lower.rows);
  ASSERT_EQ(g.task_ptr.size(), static_cast<std::size_t>(g.num_tasks) + 1);
  ASSERT_EQ(g.kind.size(), static_cast<std::size_t>(g.num_tasks));
  ASSERT_EQ(g.in_degree.size(), static_cast<std::size_t>(g.num_tasks));
  ASSERT_EQ(g.succ_ptr.size(), static_cast<std::size_t>(g.num_tasks) + 1);
  ASSERT_EQ(g.task_rows.size(), n);
  ASSERT_EQ(g.task_of.size(), n);
  EXPECT_EQ(g.num_chain_tasks + g.num_block_tasks, g.num_tasks);
  EXPECT_GE(g.levels_fused, 0);
  EXPECT_LT(g.levels_fused, std::max<index_t>(levels.num_levels, 1));

  // Exactly-once coverage: every row appears in exactly one task, and
  // task_of agrees with the row lists. position[i] is the row's index in
  // the flattened execution order, used for the intra-task order check.
  std::vector<index_t> seen(n, 0);
  std::vector<offset_t> position(n, 0);
  for (index_t t = 0; t < g.num_tasks; ++t) {
    const offset_t begin = g.task_ptr[static_cast<std::size_t>(t)];
    const offset_t end = g.task_ptr[static_cast<std::size_t>(t) + 1];
    ASSERT_LT(begin, end) << "empty task " << t;
    for (offset_t p = begin; p < end; ++p) {
      const index_t row = g.task_rows[static_cast<std::size_t>(p)];
      ASSERT_GE(row, 0);
      ASSERT_LT(row, lower.rows);
      ++seen[static_cast<std::size_t>(row)];
      position[static_cast<std::size_t>(row)] = p;
      EXPECT_EQ(g.task_of[static_cast<std::size_t>(row)], t);
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(seen[i], 1) << "row " << i << " covered " << seen[i]
                          << " times";
  }

  // Task shape invariants. Chain rows must execute in level order (that
  // sequential sweep is what satisfies intra-chain dependencies without
  // synchronization); block tasks must hold rows of ONE level, which are
  // mutually independent by the level-set definition.
  for (index_t t = 0; t < g.num_tasks; ++t) {
    const offset_t begin = g.task_ptr[static_cast<std::size_t>(t)];
    const offset_t end = g.task_ptr[static_cast<std::size_t>(t) + 1];
    if (g.chain(t)) {
      for (offset_t p = begin + 1; p < end; ++p) {
        const index_t prev = g.task_rows[static_cast<std::size_t>(p - 1)];
        const index_t cur = g.task_rows[static_cast<std::size_t>(p)];
        EXPECT_LE(levels.level_of[static_cast<std::size_t>(prev)],
                  levels.level_of[static_cast<std::size_t>(cur)])
            << "chain task " << t << " rows out of level order";
      }
    } else {
      const index_t l = levels.level_of[static_cast<std::size_t>(
          g.task_rows[static_cast<std::size_t>(begin)])];
      for (offset_t p = begin; p < end; ++p) {
        EXPECT_EQ(levels.level_of[static_cast<std::size_t>(
                      g.task_rows[static_cast<std::size_t>(p)])],
                  l)
            << "block task " << t << " spans levels";
      }
    }
  }

  // Dependency order: for every strict-lower entry x(i, j) (row i depends
  // on column j), the producer's task must not come after the consumer's;
  // within one task the producer must already have executed (no forward
  // intra-task dependencies). A corollary: block tasks can never contain
  // both ends of a dependency.
  for (index_t j = 0; j < lower.cols; ++j) {
    for (offset_t e = lower.col_ptr[static_cast<std::size_t>(j)] + 1;
         e < lower.col_ptr[static_cast<std::size_t>(j) + 1]; ++e) {
      const index_t i = lower.row_idx[static_cast<std::size_t>(e)];
      const index_t tj = g.task_of[static_cast<std::size_t>(j)];
      const index_t ti = g.task_of[static_cast<std::size_t>(i)];
      ASSERT_LE(tj, ti) << "dependency " << j << " -> " << i
                        << " goes backward in task order";
      if (tj == ti) {
        EXPECT_TRUE(g.chain(ti))
            << "block task " << ti << " carries an internal dependency";
        EXPECT_LT(position[static_cast<std::size_t>(j)],
                  position[static_cast<std::size_t>(i)])
            << "intra-task forward dependency " << j << " -> " << i;
      }
    }
  }

  // Edge structure: successors strictly ascending (sorted, deduplicated,
  // all > t, so ascending task id IS a topological order), in-degrees
  // equal to the distinct-predecessor counts the successor lists imply,
  // and every cross-task dependency covered by an explicit edge.
  std::vector<index_t> preds(static_cast<std::size_t>(g.num_tasks), 0);
  std::set<std::pair<index_t, index_t>> edges;
  for (index_t t = 0; t < g.num_tasks; ++t) {
    for (offset_t e = g.succ_ptr[static_cast<std::size_t>(t)];
         e < g.succ_ptr[static_cast<std::size_t>(t) + 1]; ++e) {
      const index_t s = g.succ[static_cast<std::size_t>(e)];
      ASSERT_GT(s, t) << "edge " << t << " -> " << s << " not forward";
      ASSERT_LT(s, g.num_tasks);
      if (e > g.succ_ptr[static_cast<std::size_t>(t)]) {
        EXPECT_LT(g.succ[static_cast<std::size_t>(e - 1)], s)
            << "successors of task " << t << " not strictly ascending";
      }
      ++preds[static_cast<std::size_t>(s)];
      edges.emplace(t, s);
    }
  }
  for (index_t t = 0; t < g.num_tasks; ++t) {
    EXPECT_EQ(g.in_degree[static_cast<std::size_t>(t)],
              preds[static_cast<std::size_t>(t)])
        << "in_degree of task " << t
        << " disagrees with the successor lists";
  }
  for (index_t j = 0; j < lower.cols; ++j) {
    for (offset_t e = lower.col_ptr[static_cast<std::size_t>(j)] + 1;
         e < lower.col_ptr[static_cast<std::size_t>(j) + 1]; ++e) {
      const index_t i = lower.row_idx[static_cast<std::size_t>(e)];
      const index_t tj = g.task_of[static_cast<std::size_t>(j)];
      const index_t ti = g.task_of[static_cast<std::size_t>(i)];
      if (tj != ti) {
        EXPECT_TRUE(edges.count({tj, ti}))
            << "cross-task dependency " << tj << " -> " << ti
            << " (rows " << j << " -> " << i << ") has no edge";
      }
    }
  }
}

CscMatrix matrix_for_case(int family, std::uint64_t seed) {
  switch (family) {
    case 0:
      return gen_chain(64 + static_cast<index_t>(seed % 64));
    case 1:
      return gen_diagonal(32 + static_cast<index_t>(seed % 96));
    case 2:
      return gen_banded(200, 4, 0.6, seed);
    case 3:
      return gen_random_lower(256, 3.0, seed);
    case 4:
      return gen_layered_dag(300, 25, 1500, 0.5, seed);
    case 5:
      return gen_chain_heavy(6, 24, 12, 3, seed);
    case 6:
      return gen_grid2d_lower(11 + static_cast<index_t>(seed % 6), 9);
    default:
      return gen_rmat_lower(8, 1200, seed);
  }
}

TEST(TaskGraphProperties, InvariantsHoldAcross200SeededMatrices) {
  const CoarsenOptions kOptionGrid[] = {
      {},            // cost-model defaults
      {1, 64},       // only width-1 levels fuse; small blocks
      {8, 16},       // aggressive fusion, tiny blocks (max cross-task edges)
      {1 << 20, 0},  // everything narrow: the whole matrix is one chain
  };
  int case_id = 0;
  for (int family = 0; family < 8; ++family) {
    for (std::uint64_t seed = 1; seed <= 7; ++seed) {
      const CscMatrix lower = matrix_for_case(family, seed * 17);
      for (std::size_t o = 0; o < std::size(kOptionGrid); ++o) {
        check_invariants(lower, kOptionGrid[o],
                         "family=" + std::to_string(family) +
                             " seed=" + std::to_string(seed) +
                             " opts=" + std::to_string(o));
        ++case_id;
      }
    }
  }
  // 8 families x 7 seeds x 4 option sets.
  EXPECT_EQ(case_id, 224);
}

TEST(TaskGraphProperties, ChainCollapsesToOneTask) {
  const CscMatrix lower = gen_chain(512);
  const LevelAnalysis levels = analyze_levels(lower);
  const TaskGraph g = coarsen_levels(lower, levels, {4, 0});
  EXPECT_EQ(g.num_tasks, 1);
  EXPECT_EQ(g.num_chain_tasks, 1);
  EXPECT_EQ(g.levels_fused, 511);
  EXPECT_EQ(g.in_degree[0], 0);
}

TEST(TaskGraphProperties, WideLevelSplitsIntoBlocks) {
  const CscMatrix lower = gen_diagonal(1000);
  const LevelAnalysis levels = analyze_levels(lower);
  const TaskGraph g = coarsen_levels(lower, levels, {4, 128});
  EXPECT_EQ(g.num_chain_tasks, 0);
  EXPECT_EQ(g.num_tasks, (1000 + 127) / 128);
  for (index_t t = 0; t < g.num_tasks; ++t) {
    EXPECT_EQ(g.in_degree[static_cast<std::size_t>(t)], 0);
  }
}

TEST(TaskGraphProperties, ResolvedOptionsArePositiveAndStable) {
  const CscMatrix lower = gen_layered_dag(200, 20, 900, 0.5, 3);
  const LevelAnalysis levels = analyze_levels(lower);
  const CoarsenOptions a = resolve_coarsen_options({}, levels);
  const CoarsenOptions b = resolve_coarsen_options({}, levels);
  EXPECT_GT(a.narrow_width, 0);
  EXPECT_GT(a.block_rows, 0);
  // The sync measurement is per-process and cached: resolution must be
  // deterministic within the process (plan blobs pin it across processes).
  EXPECT_EQ(a.narrow_width, b.narrow_width);
  EXPECT_EQ(a.block_rows, b.block_rows);
  // Explicit fields pass through untouched.
  const CoarsenOptions pinned = resolve_coarsen_options({7, 33}, levels);
  EXPECT_EQ(pinned.narrow_width, 7);
  EXPECT_EQ(pinned.block_rows, 33);
}

}  // namespace
}  // namespace msptrsv::sparse
