// Triangular predicates, extraction and the solver-shape contract.
#include <gtest/gtest.h>

#include "sparse/generators.hpp"
#include "sparse/triangular.hpp"
#include "support/contracts.hpp"

namespace msptrsv::sparse {
namespace {

TEST(Triangular, GeneratorOutputsAreLower) {
  EXPECT_TRUE(is_lower_triangular(gen_chain(50)));
  EXPECT_TRUE(is_lower_triangular(gen_banded(100, 4, 0.5, 1)));
  EXPECT_TRUE(is_lower_triangular(gen_layered_dag(500, 20, 2500, 0.5, 2)));
  EXPECT_FALSE(is_upper_triangular(gen_chain(50)));
}

TEST(Triangular, DiagonalIsBoth) {
  const CscMatrix d = gen_diagonal(10);
  EXPECT_TRUE(is_lower_triangular(d));
  EXPECT_TRUE(is_upper_triangular(d));
}

TEST(Triangular, NonsingularDiagonalDetection) {
  EXPECT_TRUE(has_nonsingular_diagonal(gen_random_lower(80, 3.0, 4)));
  CooMatrix coo;
  coo.rows = coo.cols = 2;
  coo.add(0, 0, 1.0);
  coo.add(1, 0, 1.0);  // missing (1,1)
  EXPECT_FALSE(has_nonsingular_diagonal(csc_from_coo(std::move(coo))));
}

TEST(Triangular, RequireSolvableAcceptsGeneratorOutput) {
  EXPECT_NO_THROW(require_solvable_lower(gen_grid2d_lower(10, 10)));
}

TEST(Triangular, RequireSolvableRejectsNonSquare) {
  CooMatrix coo;
  coo.rows = 2;
  coo.cols = 3;
  coo.add(0, 0, 1.0);
  coo.add(1, 1, 1.0);
  coo.add(1, 2, 1.0);
  EXPECT_THROW(require_solvable_lower(csc_from_coo(std::move(coo))),
               support::PreconditionError);
}

TEST(Triangular, RequireSolvableRejectsZeroDiagonal) {
  CooMatrix coo;
  coo.rows = coo.cols = 2;
  coo.add(0, 0, 1.0);
  coo.add(1, 1, 0.0);
  EXPECT_THROW(require_solvable_lower(csc_from_coo(std::move(coo))),
               support::PreconditionError);
}

TEST(Triangular, LowerTriangleExtraction) {
  // Full 3x3 matrix.
  CooMatrix coo;
  coo.rows = coo.cols = 3;
  for (index_t i = 0; i < 3; ++i) {
    for (index_t j = 0; j < 3; ++j) coo.add(i, j, 1.0 + i * 3 + j);
  }
  const CscMatrix full = csc_from_coo(std::move(coo));
  const CscMatrix lo = lower_triangle_of(full);
  EXPECT_TRUE(is_lower_triangular(lo));
  EXPECT_EQ(lo.nnz(), 6);  // 3 diag + 3 strict lower
  const CscMatrix up = upper_triangle_of(full);
  EXPECT_TRUE(is_upper_triangular(up));
  EXPECT_EQ(up.nnz(), 6);
}

TEST(Triangular, UnitDiagonalOptionReplacesValues) {
  const CscMatrix src = gen_random_lower(40, 3.0, 8);
  const CscMatrix unit = lower_triangle_of(src, /*unit_diagonal=*/true);
  for (index_t j = 0; j < unit.cols; ++j) {
    EXPECT_DOUBLE_EQ(unit.val[unit.col_ptr[j]], 1.0);
  }
}

TEST(Triangular, DiagonalFillRepairsMissingDiagonal) {
  CooMatrix coo;
  coo.rows = coo.cols = 3;
  coo.add(0, 0, 1.0);
  coo.add(2, 0, 1.0);  // rows 1,2 have no diagonal
  const CscMatrix fixed =
      lower_triangle_of(csc_from_coo(std::move(coo)), false, 9.0);
  EXPECT_NO_THROW(require_solvable_lower(fixed));
  EXPECT_DOUBLE_EQ(fixed.val[fixed.col_ptr[1]], 9.0);
}

TEST(Triangular, MirrorToUpperPreservesStructureSize) {
  const CscMatrix lo = gen_layered_dag(200, 10, 800, 0.4, 5);
  const CscMatrix up = mirror_to_upper(lo);
  EXPECT_TRUE(is_upper_triangular(up));
  EXPECT_EQ(up.nnz(), lo.nnz());
  // The mirrored diagonal is a permutation of the original diagonal.
  double diag_sum_lo = 0.0, diag_sum_up = 0.0;
  for (index_t j = 0; j < lo.cols; ++j) diag_sum_lo += lo.val[lo.col_ptr[j]];
  for (index_t j = 0; j < up.cols; ++j) {
    diag_sum_up += up.val[up.col_ptr[j + 1] - 1];
  }
  EXPECT_NEAR(diag_sum_lo, diag_sum_up, 1e-9);
}

TEST(Triangular, MirrorRejectsUpperInput) {
  const CscMatrix up = mirror_to_upper(gen_chain(10));
  EXPECT_THROW(mirror_to_upper(up), support::PreconditionError);
}

}  // namespace
}  // namespace msptrsv::sparse
