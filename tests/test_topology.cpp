// Interconnect topologies: DGX-1 cube-mesh wiring, DGX-2 switch, routing.
#include <gtest/gtest.h>

#include "sim/topology.hpp"
#include "support/contracts.hpp"

namespace msptrsv::sim {
namespace {

TEST(Topology, Dgx1EveryGpuHasSixNvlinkLanes) {
  const Topology t = Topology::dgx1(8);
  for (int g = 0; g < 8; ++g) {
    // 25 GB/s per lane: outgoing bandwidth of 6 lanes = 150 GB/s.
    EXPECT_DOUBLE_EQ(t.active_bandwidth_gbs(g), 150.0) << "gpu " << g;
  }
}

TEST(Topology, Dgx1LinksAreSymmetric) {
  const Topology t = Topology::dgx1(8);
  for (const LinkSpec& l : t.links()) {
    bool found = false;
    for (const LinkSpec& r : t.links()) {
      if (r.src == l.dst && r.dst == l.src && r.bw_gbs == l.bw_gbs) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found);
  }
}

TEST(Topology, Dgx1FirstQuadIsFullyConnected) {
  // The paper's NVSHMEM runs use up to 4 GPUs "that are fully connected".
  const Topology t = Topology::dgx1(4);
  for (int a = 0; a < 4; ++a) {
    for (int b = 0; b < 4; ++b) {
      if (a != b) {
        EXPECT_EQ(t.hops(a, b), 1);
      }
    }
  }
}

TEST(Topology, Dgx1CrossQuadPairsNeedTwoHops) {
  const Topology t = Topology::dgx1(8);
  // 0-5 has no direct link (0 connects to 4 across the cube, not 5).
  EXPECT_EQ(t.hops(0, 5), 2);
  EXPECT_EQ(t.hops(1, 6), 2);
  // Cube cross-edges are direct.
  EXPECT_EQ(t.hops(0, 4), 1);
  EXPECT_EQ(t.hops(3, 7), 1);
}

TEST(Topology, Dgx1DoubleLinksHaveDoubleBandwidth) {
  const Topology t = Topology::dgx1(8);
  EXPECT_DOUBLE_EQ(t.route_bandwidth_gbs(0, 3), 50.0);  // double link
  EXPECT_DOUBLE_EQ(t.route_bandwidth_gbs(0, 1), 25.0);  // single link
}

TEST(Topology, Dgx1ActiveBandwidthGrowsWithGpuCount) {
  // The paper's explanation for DGX-1 scaling (Section VI-D).
  const double bw2 = Topology::dgx1(2).active_bandwidth_gbs(0);
  const double bw4 = Topology::dgx1(4).active_bandwidth_gbs(0);
  const double bw8 = Topology::dgx1(8).active_bandwidth_gbs(0);
  EXPECT_LT(bw2, bw4);
  EXPECT_LT(bw4, bw8);
}

TEST(Topology, Dgx2IsSingleHopAllToAll) {
  const Topology t = Topology::dgx2(16);
  for (int a = 0; a < 16; ++a) {
    for (int b = 0; b < 16; ++b) {
      if (a == b) continue;
      EXPECT_EQ(t.hops(a, b), 1);
      EXPECT_EQ(t.route(a, b).size(), 2u);  // egress + ingress port
    }
  }
}

TEST(Topology, Dgx2PerGpuBandwidthConstantInGpuCount) {
  EXPECT_DOUBLE_EQ(Topology::dgx2(4).active_bandwidth_gbs(0),
                   Topology::dgx2(16).active_bandwidth_gbs(0));
}

TEST(Topology, RoutesAreValidLinkChains) {
  const Topology t = Topology::dgx1(8);
  for (int a = 0; a < 8; ++a) {
    for (int b = 0; b < 8; ++b) {
      if (a == b) continue;
      const std::vector<int>& route = t.route(a, b);
      ASSERT_FALSE(route.empty());
      EXPECT_EQ(t.link(route.front()).src, a);
      EXPECT_EQ(t.link(route.back()).dst, b);
      for (std::size_t k = 1; k < route.size(); ++k) {
        EXPECT_EQ(t.link(route[k - 1]).dst, t.link(route[k]).src);
      }
    }
  }
}

TEST(Topology, SelfRouteRejected) {
  const Topology t = Topology::dgx1(2);
  EXPECT_THROW(t.route(0, 0), support::PreconditionError);
}

TEST(Topology, BoundsChecked) {
  EXPECT_THROW(Topology::dgx1(9), support::PreconditionError);
  EXPECT_THROW(Topology::dgx2(17), support::PreconditionError);
  EXPECT_THROW(Topology::dgx1(0), support::PreconditionError);
}

TEST(Topology, AllToAllCustomBandwidth) {
  const Topology t = Topology::all_to_all(5, 40.0);
  EXPECT_EQ(t.num_links(), 5 * 4);
  EXPECT_DOUBLE_EQ(t.route_bandwidth_gbs(1, 3), 40.0);
  EXPECT_EQ(t.hops(1, 3), 1);
}

}  // namespace
}  // namespace msptrsv::sim
