// Workload generators: shape, determinism, conditioning, nnz targeting.
#include <gtest/gtest.h>

#include <cmath>

#include "sparse/generators.hpp"
#include "sparse/level_analysis.hpp"
#include "sparse/triangular.hpp"
#include "support/contracts.hpp"

namespace msptrsv::sparse {
namespace {

TEST(Generators, AllAreDeterministicInSeed) {
  EXPECT_TRUE(identical(gen_banded(200, 5, 0.5, 42), gen_banded(200, 5, 0.5, 42)));
  EXPECT_TRUE(identical(gen_random_lower(200, 4.0, 42),
                        gen_random_lower(200, 4.0, 42)));
  EXPECT_TRUE(identical(gen_layered_dag(500, 10, 2500, 0.5, 42),
                        gen_layered_dag(500, 10, 2500, 0.5, 42)));
  EXPECT_TRUE(identical(gen_rmat_lower(8, 600, 42), gen_rmat_lower(8, 600, 42)));
}

TEST(Generators, SeedsChangeStructureOrValues) {
  EXPECT_FALSE(identical(gen_random_lower(200, 4.0, 1),
                         gen_random_lower(200, 4.0, 2)));
}

TEST(Generators, LayeredDagApproximatesNnzTarget) {
  const offset_t target = 30000;
  const CscMatrix m = gen_layered_dag(5000, 50, target, 0.5, 7);
  EXPECT_GT(m.nnz(), target * 7 / 10);
  EXPECT_LT(m.nnz(), target * 13 / 10);
}

TEST(Generators, LayeredDagRejectsBadArguments) {
  EXPECT_THROW(gen_layered_dag(10, 11, 50, 0.5, 1), support::PreconditionError);
  EXPECT_THROW(gen_layered_dag(10, 0, 50, 0.5, 1), support::PreconditionError);
  EXPECT_THROW(gen_layered_dag(10, 2, 50, 1.5, 1), support::PreconditionError);
}

TEST(Generators, LayeredDagLocalityShortensDependencySpans) {
  auto mean_span = [](const CscMatrix& m) {
    double total = 0.0;
    offset_t count = 0;
    for (index_t j = 0; j < m.cols; ++j) {
      for (offset_t k = m.col_ptr[j] + 1; k < m.col_ptr[j + 1]; ++k) {
        total += std::abs(static_cast<double>(m.row_idx[k]) - j);
        ++count;
      }
    }
    return count ? total / static_cast<double>(count) : 0.0;
  };
  const double local = mean_span(gen_layered_dag(4000, 40, 20000, 0.95, 5));
  const double scattered = mean_span(gen_layered_dag(4000, 40, 20000, 0.0, 5));
  EXPECT_LT(local, 0.6 * scattered);
}

TEST(Generators, BandedRespectsBandwidth) {
  const index_t bw = 7;
  const CscMatrix m = gen_banded(300, bw, 0.8, 9);
  for (index_t j = 0; j < m.cols; ++j) {
    for (offset_t k = m.col_ptr[j]; k < m.col_ptr[j + 1]; ++k) {
      EXPECT_LE(m.row_idx[k] - j, bw);
    }
  }
}

TEST(Generators, RandomLowerHitsAverageDegree) {
  const CscMatrix m = gen_random_lower(5000, 6.0, 13);
  const double avg = static_cast<double>(m.nnz() - m.rows) / m.rows;
  EXPECT_NEAR(avg, 6.0, 0.8);
}

TEST(Generators, Grid3dStructure) {
  const CscMatrix m = gen_grid3d_lower(5, 4, 3);
  EXPECT_EQ(m.rows, 60);
  // interior cell count check via nnz: n + edges along each axis
  const offset_t expected = 60 + (4 * 4 * 3) + (5 * 3 * 3) + (5 * 4 * 2);
  EXPECT_EQ(m.nnz(), expected);
  const LevelAnalysis a = analyze_levels(m);
  EXPECT_EQ(a.num_levels, 5 + 4 + 3 - 2);
}

TEST(Generators, RmatProducesSkewedInDegrees) {
  const CscMatrix m = gen_rmat_lower(11, 8000, 3);
  const std::vector<index_t> indeg = compute_in_degrees(m);
  index_t max_deg = 0;
  for (index_t d : indeg) max_deg = std::max(max_deg, d);
  const double avg = static_cast<double>(m.nnz() - m.rows) / m.rows;
  // Power-law-ish: max in-degree far above the average.
  EXPECT_GT(static_cast<double>(max_deg), 10.0 * avg);
}

TEST(Generators, ValuesAreDiagonallyDominantEnough) {
  // Forward substitution on generated matrices must stay well conditioned:
  // |diag| >= 1 and row off-diagonal sums bounded by ~1.
  const CscMatrix m = gen_layered_dag(2000, 30, 12000, 0.3, 21);
  std::vector<double> row_offdiag(static_cast<std::size_t>(m.rows), 0.0);
  for (index_t j = 0; j < m.cols; ++j) {
    EXPECT_GE(std::abs(m.val[m.col_ptr[j]]), 1.0);
    for (offset_t k = m.col_ptr[j] + 1; k < m.col_ptr[j + 1]; ++k) {
      row_offdiag[static_cast<std::size_t>(m.row_idx[k])] += std::abs(m.val[k]);
    }
  }
  for (double s : row_offdiag) EXPECT_LE(s, 1.5);
}

TEST(Generators, SolutionHelperRoundTrip) {
  const CscMatrix m = gen_banded(400, 6, 0.6, 5);
  const std::vector<value_t> x = gen_solution(m.rows, 9);
  EXPECT_EQ(x.size(), 400u);
  for (value_t v : x) EXPECT_GE(std::abs(v), 1e-3);
  const std::vector<value_t> b = gen_rhs_for_solution(m, x);
  EXPECT_EQ(b.size(), 400u);
}

}  // namespace
}  // namespace msptrsv::sparse
