// Multi-GPU engine semantics: dispatch-order slot admission, kernel launch
// serialization, communication accounting, report invariants.
#include <gtest/gtest.h>

#include "core/comm_nvshmem.hpp"
#include "core/comm_unified.hpp"
#include "core/mg_engine.hpp"
#include "core/reference.hpp"
#include "core/residual.hpp"
#include "sparse/generators.hpp"
#include "support/contracts.hpp"

namespace msptrsv::core {
namespace {

EngineResult run_nvshmem(const sparse::CscMatrix& l,
                         const std::vector<value_t>& b,
                         const sparse::Partition& p, const sim::Machine& m,
                         NvshmemCommOptions options = {}) {
  sim::Interconnect net(m.topology, m.cost);
  NvshmemComm comm(net, m.cost, p.num_gpus(), l.rows, options);
  return run_mg_engine(l, b, p, m, net, comm);
}

EngineResult run_unified(const sparse::CscMatrix& l,
                         const std::vector<value_t>& b,
                         const sparse::Partition& p, const sim::Machine& m) {
  sim::Interconnect net(m.topology, m.cost);
  UnifiedComm comm(net, m.cost, p.num_gpus(), l.rows);
  return run_mg_engine(l, b, p, m, net, comm);
}

TEST(MgEngine, ChainMakespanReflectsSequentialVisibility) {
  // A pure chain on one GPU: makespan >= n * (solve + local visibility).
  const index_t n = 2000;
  const sparse::CscMatrix l = sparse::gen_chain(n);
  const std::vector<value_t> b(static_cast<std::size_t>(n), 1.0);
  const sim::Machine m = sim::Machine::dgx1(1);
  const EngineResult r =
      run_nvshmem(l, b, sparse::Partition::block(n, 1), m);
  const double per_hop = m.cost.solve_base_us + m.cost.local_visibility_us;
  EXPECT_GE(r.report.solve_us, 0.9 * n * per_hop);
  EXPECT_LT(max_relative_difference(r.x, solve_lower_serial(l, b)), 1e-12);
}

TEST(MgEngine, DiagonalMatrixIsThroughputBound) {
  // No dependencies: time ~ n / (gpus * warp_slots) waves.
  const index_t n = 60000;
  const sparse::CscMatrix l = sparse::gen_diagonal(n);
  const std::vector<value_t> b(static_cast<std::size_t>(n), 1.0);
  const sim::Machine m = sim::Machine::dgx1(4);
  const EngineResult r =
      run_nvshmem(l, b, sparse::Partition::block(n, 4), m);
  const double waves =
      static_cast<double>(n) / (4.0 * m.cost.warp_slots_per_gpu);
  EXPECT_GE(r.report.solve_us, waves * m.cost.solve_base_us);
  EXPECT_EQ(r.report.remote_updates, 0u);
}

TEST(MgEngine, KernelLaunchOverheadScalesWithTaskCount) {
  const index_t n = 4000;
  const sparse::CscMatrix l = sparse::gen_diagonal(n);
  const std::vector<value_t> b(static_cast<std::size_t>(n), 1.0);
  const sim::Machine m = sim::Machine::dgx1(2);
  const EngineResult few =
      run_nvshmem(l, b, sparse::Partition::round_robin_tasks(n, 2, 2), m);
  const EngineResult many =
      run_nvshmem(l, b, sparse::Partition::round_robin_tasks(n, 2, 256), m);
  EXPECT_EQ(few.report.kernel_launches, 4u);
  EXPECT_EQ(many.report.kernel_launches, 512u);
  // 256 serialized launches delay the last task by ~256 * launch_us.
  EXPECT_GT(many.report.solve_us,
            few.report.solve_us + 200.0 * m.cost.kernel_launch_us);
}

TEST(MgEngine, BlockPartitionShowsUnidirectionalWaiting) {
  // With block distribution the last GPU's busy time starts late; the task
  // pool spreads early work to every GPU. Compare idle skew.
  const sparse::CscMatrix l = sparse::gen_layered_dag(24000, 60, 120000, 0.2, 9);
  const std::vector<value_t> b =
      sparse::gen_rhs_for_solution(l, sparse::gen_solution(l.rows, 1));
  const sim::Machine m = sim::Machine::dgx1(4);
  const EngineResult block =
      run_nvshmem(l, b, sparse::Partition::block(l.rows, 4), m);
  const EngineResult tasks =
      run_nvshmem(l, b, sparse::Partition::round_robin_tasks(l.rows, 4, 8), m);
  EXPECT_LT(tasks.report.solve_us, block.report.solve_us);
  EXPECT_LE(tasks.report.load_imbalance(), block.report.load_imbalance());
}

TEST(MgEngine, RemoteUpdateCountMatchesPartitionPrediction) {
  const sparse::CscMatrix l = sparse::gen_layered_dag(6000, 30, 30000, 0.4, 5);
  const std::vector<value_t> b =
      sparse::gen_rhs_for_solution(l, sparse::gen_solution(l.rows, 2));
  const sparse::Partition p = sparse::Partition::block(l.rows, 4);
  const EngineResult r = run_nvshmem(l, b, p, sim::Machine::dgx1(4));
  EXPECT_EQ(r.report.remote_updates,
            static_cast<std::uint64_t>(p.count_remote_updates(l)));
  EXPECT_EQ(r.report.local_updates + r.report.remote_updates,
            static_cast<std::uint64_t>(l.nnz() - l.rows));
}

TEST(MgEngine, AnalysisPhaseChargedWhenRequested) {
  const sparse::CscMatrix l = sparse::gen_banded(3000, 6, 0.5, 3);
  const std::vector<value_t> b =
      sparse::gen_rhs_for_solution(l, sparse::gen_solution(l.rows, 3));
  const sparse::Partition p = sparse::Partition::block(l.rows, 2);
  const sim::Machine m = sim::Machine::dgx1(2);

  sim::Interconnect net1(m.topology, m.cost);
  NvshmemComm c1(net1, m.cost, 2, l.rows);
  EngineOptions with;
  const EngineResult a = run_mg_engine(l, b, p, m, net1, c1, with);

  sim::Interconnect net2(m.topology, m.cost);
  NvshmemComm c2(net2, m.cost, 2, l.rows);
  EngineOptions without;
  without.include_analysis = false;
  const EngineResult c = run_mg_engine(l, b, p, m, net2, c2, without);

  EXPECT_GT(a.report.analysis_us, 0.0);
  EXPECT_DOUBLE_EQ(c.report.analysis_us, 0.0);
  EXPECT_DOUBLE_EQ(a.report.solve_us, c.report.solve_us);
}

TEST(MgEngine, UnifiedCommBooksFaultsNvshmemBooksGets) {
  const sparse::CscMatrix l = sparse::gen_layered_dag(8000, 40, 40000, 0.2, 7);
  const std::vector<value_t> b =
      sparse::gen_rhs_for_solution(l, sparse::gen_solution(l.rows, 4));
  const sparse::Partition p = sparse::Partition::block(l.rows, 4);
  const sim::Machine m = sim::Machine::dgx1(4);
  const EngineResult u = run_unified(l, b, p, m);
  const EngineResult s = run_nvshmem(l, b, p, m);
  EXPECT_GT(u.report.page_faults, 0u);
  EXPECT_EQ(u.report.nvshmem_gets, 0u);
  EXPECT_GT(s.report.nvshmem_gets, 0u);
  EXPECT_EQ(s.report.page_faults, 0u);
  // Both compute the right answer.
  const std::vector<value_t> gold = solve_lower_serial(l, b);
  EXPECT_LT(max_relative_difference(u.x, gold), 1e-10);
  EXPECT_LT(max_relative_difference(s.x, gold), 1e-10);
}

TEST(MgEngine, SymmetricHeapSizeMatchesTwoArraysPerPe) {
  const index_t n = 5000;
  const sim::Machine m = sim::Machine::dgx1(4);
  sim::Interconnect net(m.topology, m.cost);
  NvshmemComm comm(net, m.cost, 4, n);
  EXPECT_DOUBLE_EQ(comm.symmetric_heap_bytes(),
                   n * (sizeof(value_t) + sizeof(index_t)));
}

TEST(MgEngine, RejectsMismatchedPartition) {
  const sparse::CscMatrix l = sparse::gen_chain(100);
  const std::vector<value_t> b(100, 1.0);
  const sparse::Partition p = sparse::Partition::block(99, 2);
  const sim::Machine m = sim::Machine::dgx1(2);
  sim::Interconnect net(m.topology, m.cost);
  NvshmemComm comm(net, m.cost, 2, 100);
  EXPECT_THROW(run_mg_engine(l, b, p, m, net, comm),
               support::PreconditionError);
}

TEST(MgEngine, RejectsPartitionWiderThanMachine) {
  const sparse::CscMatrix l = sparse::gen_chain(100);
  const std::vector<value_t> b(100, 1.0);
  const sparse::Partition p = sparse::Partition::block(100, 4);
  const sim::Machine m = sim::Machine::dgx1(2);
  sim::Interconnect net(m.topology, m.cost);
  NvshmemComm comm(net, m.cost, 4, 100);
  EXPECT_THROW(run_mg_engine(l, b, p, m, net, comm),
               support::PreconditionError);
}

}  // namespace
}  // namespace msptrsv::core
