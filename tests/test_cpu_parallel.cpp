// Real-thread host backends under true concurrency: correctness across
// repeated runs, thread counts and matrix shapes.
#include <gtest/gtest.h>

#include "core/cpu_parallel.hpp"
#include "core/reference.hpp"
#include "core/residual.hpp"
#include "sparse/generators.hpp"
#include "sparse/level_analysis.hpp"

namespace msptrsv::core {
namespace {

class CpuParallelThreads : public ::testing::TestWithParam<int> {};

TEST_P(CpuParallelThreads, LevelSetMatchesSerial) {
  const sparse::CscMatrix l = sparse::gen_layered_dag(3000, 60, 15000, 0.4, 3);
  const std::vector<value_t> b =
      sparse::gen_rhs_for_solution(l, sparse::gen_solution(l.rows, 1));
  const std::vector<value_t> gold = solve_lower_serial(l, b);
  const sparse::LevelAnalysis a = sparse::analyze_levels(l);
  const std::vector<value_t> x =
      solve_lower_levelset_threads(l, b, a, GetParam());
  EXPECT_LT(max_relative_difference(x, gold), 1e-10);
}

TEST_P(CpuParallelThreads, SyncFreeMatchesSerial) {
  const sparse::CscMatrix l = sparse::gen_layered_dag(3000, 60, 15000, 0.4, 5);
  const std::vector<value_t> b =
      sparse::gen_rhs_for_solution(l, sparse::gen_solution(l.rows, 2));
  const std::vector<value_t> gold = solve_lower_serial(l, b);
  const std::vector<value_t> x = solve_lower_syncfree_threads(l, b, GetParam());
  EXPECT_LT(max_relative_difference(x, gold), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, CpuParallelThreads,
                         ::testing::Values(1, 2, 3, 4, 8));

TEST(CpuParallel, SyncFreeSurvivesDeepChains) {
  // Worst case for busy-wait scheduling: a pure chain with more components
  // than threads. The ascending-claim scheme must not deadlock.
  const sparse::CscMatrix l = sparse::gen_chain(5000);
  const std::vector<value_t> b =
      sparse::gen_rhs_for_solution(l, sparse::gen_solution(l.rows, 3));
  const std::vector<value_t> gold = solve_lower_serial(l, b);
  const std::vector<value_t> x = solve_lower_syncfree_threads(l, b, 4);
  EXPECT_LT(max_relative_difference(x, gold), 1e-10);
}

TEST(CpuParallel, RepeatedRunsAreConsistentUnderRaces) {
  // Atomics make the result deterministic up to floating-point summation
  // order; residual must stay tiny on every run.
  const sparse::CscMatrix l = sparse::gen_rmat_lower(10, 6000, 17);
  const std::vector<value_t> b =
      sparse::gen_rhs_for_solution(l, sparse::gen_solution(l.rows, 4));
  for (int run = 0; run < 10; ++run) {
    const std::vector<value_t> x = solve_lower_syncfree_threads(l, b, 4);
    EXPECT_LT(relative_residual(l, x, b), 1e-11) << "run " << run;
  }
}

TEST(CpuParallel, LevelSetHandlesSingleLevelAndSingleChain) {
  {
    const sparse::CscMatrix l = sparse::gen_diagonal(100);
    const std::vector<value_t> b(100, 2.0);
    const sparse::LevelAnalysis a = sparse::analyze_levels(l);
    const std::vector<value_t> x = solve_lower_levelset_threads(l, b, a, 3);
    EXPECT_LT(max_relative_difference(x, solve_lower_serial(l, b)), 1e-12);
  }
  {
    const sparse::CscMatrix l = sparse::gen_chain(200);
    const std::vector<value_t> b(200, 1.0);
    const sparse::LevelAnalysis a = sparse::analyze_levels(l);
    const std::vector<value_t> x = solve_lower_levelset_threads(l, b, a, 3);
    EXPECT_LT(max_relative_difference(x, solve_lower_serial(l, b)), 1e-12);
  }
}

TEST(CpuParallel, DefaultThreadCountWorks) {
  const sparse::CscMatrix l = sparse::gen_banded(1000, 6, 0.5, 7);
  const std::vector<value_t> b =
      sparse::gen_rhs_for_solution(l, sparse::gen_solution(l.rows, 5));
  const std::vector<value_t> x = solve_lower_syncfree_threads(l, b, 0);
  EXPECT_LT(relative_residual(l, x, b), 1e-11);
}

}  // namespace
}  // namespace msptrsv::core
