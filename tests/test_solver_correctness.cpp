// The central property suite: EVERY backend, on EVERY matrix family, for
// EVERY machine configuration, must reproduce the serial reference solution
// (the backends differ only in summation order, so agreement is tight).
#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <string>
#include <tuple>
#include <vector>

#include "core/msptrsv.hpp"

namespace msptrsv {
namespace {

struct MatrixCase {
  std::string name;
  sparse::CscMatrix lower;
};

std::vector<MatrixCase> matrix_cases() {
  std::vector<MatrixCase> cases;
  cases.push_back({"diagonal", sparse::gen_diagonal(257)});
  cases.push_back({"chain", sparse::gen_chain(400)});
  cases.push_back({"banded", sparse::gen_banded(600, 8, 0.5, 11)});
  cases.push_back({"random", sparse::gen_random_lower(800, 5.0, 13)});
  cases.push_back({"layered", sparse::gen_layered_dag(1000, 25, 6000, 0.5, 17)});
  cases.push_back({"grid2d", sparse::gen_grid2d_lower(24, 24)});
  cases.push_back({"grid3d", sparse::gen_grid3d_lower(8, 8, 8)});
  cases.push_back({"rmat", sparse::gen_rmat_lower(9, 2500, 19)});
  return cases;
}

struct BackendConfig {
  std::string label;
  core::SolveOptions options;
};

std::vector<BackendConfig> backend_configs() {
  using core::Backend;
  std::vector<BackendConfig> configs;

  auto add = [&](std::string label, Backend b, sim::Machine m,
                 int tasks_per_gpu = 8) {
    core::SolveOptions o;
    o.backend = b;
    o.machine = std::move(m);
    o.tasks_per_gpu = tasks_per_gpu;
    configs.push_back({std::move(label), std::move(o)});
  };

  add("serial", Backend::kSerial, sim::Machine::dgx1(1));
  add("cpu-levelset", Backend::kCpuLevelSet, sim::Machine::dgx1(1));
  add("cpu-syncfree", Backend::kCpuSyncFree, sim::Machine::dgx1(1));
  add("gpu-levelset", Backend::kGpuLevelSet, sim::Machine::dgx1(1));
  add("unified-dgx1x2", Backend::kMgUnified, sim::Machine::dgx1(2));
  add("unified-dgx1x4", Backend::kMgUnified, sim::Machine::dgx1(4));
  add("unified-dgx1x8", Backend::kMgUnified, sim::Machine::dgx1(8));
  add("unified+task-dgx1x4", Backend::kMgUnifiedTask, sim::Machine::dgx1(4));
  add("shmem-dgx1x4", Backend::kMgShmem, sim::Machine::dgx1(4));
  add("zerocopy-dgx1x1", Backend::kMgZeroCopy, sim::Machine::dgx1(1));
  add("zerocopy-dgx1x3", Backend::kMgZeroCopy, sim::Machine::dgx1(3));
  add("zerocopy-dgx1x4", Backend::kMgZeroCopy, sim::Machine::dgx1(4));
  add("zerocopy-dgx2x8", Backend::kMgZeroCopy, sim::Machine::dgx2(8));
  add("zerocopy-dgx2x16", Backend::kMgZeroCopy, sim::Machine::dgx2(16));
  add("zerocopy-32task", Backend::kMgZeroCopy, sim::Machine::dgx1(4), 32);

  // Ablations must stay correct too.
  core::SolveOptions naive;
  naive.backend = Backend::kMgShmem;
  naive.machine = sim::Machine::dgx1(4);
  naive.nvshmem.naive_get_update_put = true;
  configs.push_back({"shmem-naive-ablation", naive});

  core::SolveOptions all_pes;
  all_pes.backend = Backend::kMgZeroCopy;
  all_pes.machine = sim::Machine::dgx1(4);
  all_pes.nvshmem.gather_from_all_pes = true;
  configs.push_back({"zerocopy-gather-all", all_pes});

  return configs;
}

class SolverCorrectness
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(SolverCorrectness, MatchesSerialReference) {
  static const std::vector<MatrixCase> matrices = matrix_cases();
  static const std::vector<BackendConfig> backends = backend_configs();
  const MatrixCase& m = matrices[std::get<0>(GetParam())];
  const BackendConfig& cfg = backends[std::get<1>(GetParam())];

  const std::vector<value_t> x_ref = sparse::gen_solution(m.lower.rows, 101);
  const std::vector<value_t> b = sparse::gen_rhs_for_solution(m.lower, x_ref);
  const std::vector<value_t> gold = core::solve_lower_serial(m.lower, b);

  const core::SolveResult r = core::solve(m.lower, b, cfg.options);
  ASSERT_EQ(r.x.size(), gold.size()) << cfg.label << " on " << m.name;
  EXPECT_LT(core::max_relative_difference(r.x, gold), 1e-10)
      << cfg.label << " on " << m.name;
  EXPECT_LT(core::relative_residual(m.lower, r.x, b), 1e-10)
      << cfg.label << " on " << m.name;

  if (core::is_simulated(cfg.options.backend)) {
    EXPECT_GT(r.report.solve_us, 0.0) << cfg.label << " on " << m.name;
    EXPECT_TRUE(std::isfinite(r.report.solve_us));
  }
}

std::string case_name(
    const ::testing::TestParamInfo<std::tuple<std::size_t, std::size_t>>&
        info) {
  static const std::vector<MatrixCase> matrices = matrix_cases();
  static const std::vector<BackendConfig> backends = backend_configs();
  std::string name = matrices[std::get<0>(info.param)].name + "_" +
                     backends[std::get<1>(info.param)].label;
  for (char& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    AllBackendsAllMatrices, SolverCorrectness,
    ::testing::Combine(::testing::Range<std::size_t>(0, 8),
                       ::testing::Range<std::size_t>(0, 17)),
    case_name);

TEST(SolverDeterminism, SimulatedRunsAreBitIdentical) {
  const sparse::CscMatrix l = sparse::gen_layered_dag(2000, 40, 12000, 0.4, 5);
  const std::vector<value_t> b =
      sparse::gen_rhs_for_solution(l, sparse::gen_solution(l.rows, 2));
  core::SolveOptions o;
  o.backend = core::Backend::kMgZeroCopy;
  o.machine = sim::Machine::dgx1(4);
  const core::SolveResult a = core::solve(l, b, o);
  const core::SolveResult c = core::solve(l, b, o);
  EXPECT_EQ(a.x, c.x);
  EXPECT_EQ(a.report.solve_us, c.report.solve_us);
  EXPECT_EQ(a.report.page_faults, c.report.page_faults);
  EXPECT_EQ(a.report.nvshmem_gets, c.report.nvshmem_gets);
}

TEST(SolverUpper, BackwardThroughMultiGpuBackend) {
  const sparse::CscMatrix lower = sparse::gen_layered_dag(900, 30, 5000, 0.5, 23);
  const sparse::CscMatrix upper = sparse::mirror_to_upper(lower);
  const std::vector<value_t> x_ref = sparse::gen_solution(upper.rows, 31);
  const std::vector<value_t> b = sparse::multiply(upper, x_ref);

  core::SolveOptions o;
  o.backend = core::Backend::kMgZeroCopy;
  o.machine = sim::Machine::dgx1(4);
  const core::SolveResult r = core::solve_upper(upper, b, o);
  EXPECT_LT(core::max_relative_difference(r.x, x_ref), 1e-9);
}

}  // namespace
}  // namespace msptrsv
