// Unified-memory page model: first touch, migration, thrashing mitigation.
#include <gtest/gtest.h>

#include "sim/unified_memory.hpp"
#include "support/contracts.hpp"

namespace msptrsv::sim {
namespace {

struct UmFixture {
  Topology topo = Topology::dgx1(4);
  CostModel cost;
  Interconnect net{topo, cost};
  UnifiedMemoryModel um{net, cost, 4};
};

TEST(UnifiedMemory, FirstTouchIsFreeAndClaimsOwnership) {
  UmFixture f;
  const int r = f.um.create_region(1000, sizeof(value_t));
  EXPECT_EQ(f.um.owner_of(r, 0), -1);
  const sim_time_t t = f.um.access(r, 0, 2, 5.0);
  EXPECT_DOUBLE_EQ(t, 5.0);
  EXPECT_EQ(f.um.owner_of(r, 0), 2);
  EXPECT_EQ(f.um.stats().faults, 0u);
}

TEST(UnifiedMemory, RemoteAccessFaultsAndMigrates) {
  UmFixture f;
  const int r = f.um.create_region(1000, sizeof(value_t));
  f.um.access(r, 0, 0, 0.0);
  const sim_time_t t = f.um.access(r, 0, 1, 10.0);
  EXPECT_GE(t, 10.0 + f.cost.page_fault_us);
  EXPECT_EQ(f.um.owner_of(r, 0), 1);
  EXPECT_EQ(f.um.stats().faults, 1u);
  EXPECT_GT(f.um.stats().migrated_bytes, 0.0);
}

TEST(UnifiedMemory, OwnerAccessIsFreeAfterMigration) {
  UmFixture f;
  const int r = f.um.create_region(1000, sizeof(value_t));
  f.um.access(r, 0, 0, 0.0);
  f.um.access(r, 0, 1, 10.0);
  const sim_time_t t = f.um.access(r, 0, 1, 100.0);
  EXPECT_DOUBLE_EQ(t, 100.0);
  EXPECT_EQ(f.um.stats().faults, 1u);
}

TEST(UnifiedMemory, EntriesOnSameGranuleShareOwnership) {
  UmFixture f;
  // Small regions split into >= 16-entry granules: entries 0 and 10 share
  // one, entry 50 lives on another.
  const int r = f.um.create_region(100, sizeof(value_t));
  f.um.access(r, 0, 0, 0.0);
  EXPECT_EQ(f.um.owner_of(r, 10), 0);   // same granule
  EXPECT_EQ(f.um.owner_of(r, 50), -1);  // untouched granule
  f.um.access(r, 10, 3, 1.0);
  EXPECT_EQ(f.um.owner_of(r, 0), 3);
  EXPECT_EQ(f.um.stats().faults, 1u);
}

TEST(UnifiedMemory, AlternatingWritersThrashUntilPinned) {
  UmFixture f;
  const int r = f.um.create_region(100, sizeof(value_t));
  sim_time_t t = 0.0;
  for (int round = 0; round < 40; ++round) {
    t = f.um.access(r, 0, round % 2, t + 1.0);
  }
  const UnifiedMemoryStats& s = f.um.stats();
  // The bounce storm triggers the mitigation: pins happened, faults stopped
  // well short of 39, and later accesses went through the peer mapping.
  EXPECT_GT(s.pins, 0u);
  EXPECT_LT(s.faults, 20u);
  EXPECT_GT(s.direct_remote_accesses, 10u);
}

TEST(UnifiedMemory, PinnedAccessIsCheaperThanFault) {
  UmFixture f;
  const int r = f.um.create_region(100, sizeof(value_t));
  sim_time_t t = 0.0;
  for (int round = 0; round < 40; ++round) {
    t = f.um.access(r, 0, round % 2, t + 1.0);
  }
  // Now pinned: a remote access costs ~remote_access_us, far below a fault.
  const sim_time_t before = t + 100.0;
  const sim_time_t after = f.um.access(r, 0, 2, before);
  EXPECT_LT(after - before, f.cost.page_fault_us);
  EXPECT_GE(after - before, f.cost.remote_access_us);
}

TEST(UnifiedMemory, PollReadRateLimited) {
  UmFixture f;
  const int r = f.um.create_region(100, sizeof(index_t));
  f.um.access(r, 0, 0, 0.0);  // owner: GPU 0
  // GPU 1 polls twice in quick succession; the second ride shares the pull.
  const sim_time_t first = f.um.poll_read(r, 0, 1, 10.0);
  const std::uint64_t faults_after_first = f.um.stats().faults;
  f.um.access(r, 0, 0, first + 1.0);  // writer steals the page back
  const sim_time_t second = f.um.poll_read(r, 0, 1, first + 2.0);
  (void)second;
  // No unbounded fault growth from polling.
  EXPECT_LE(f.um.stats().faults, faults_after_first + 2);
}

TEST(UnifiedMemory, PollVisibilityNeverBooksTraffic) {
  UmFixture f;
  const int r = f.um.create_region(100, sizeof(index_t));
  f.um.access(r, 0, 0, 0.0);
  const std::uint64_t faults = f.um.stats().faults;
  const double bytes = f.net.total_bytes();
  const sim_time_t v = f.um.poll_visibility(r, 0, 1, 5.0);
  EXPECT_GT(v, 5.0);
  EXPECT_EQ(f.um.stats().faults, faults);
  EXPECT_DOUBLE_EQ(f.net.total_bytes(), bytes);
}

TEST(UnifiedMemory, GranuleCountScalesWithRegion) {
  UmFixture f;
  // Large region: 4 KiB granules; small region: ratio-based granules so the
  // array still splits into many contention units.
  const int big = f.um.create_region(4 << 20, sizeof(index_t));
  const int small = f.um.create_region(10000, sizeof(index_t));
  // Different entries far apart land on different granules.
  f.um.access(big, 0, 0, 0.0);
  EXPECT_EQ(f.um.owner_of(big, (4 << 20) - 1), -1);
  f.um.access(small, 0, 0, 0.0);
  EXPECT_EQ(f.um.owner_of(small, 9999), -1);
}

TEST(UnifiedMemory, RegionBoundsChecked) {
  UmFixture f;
  const int r = f.um.create_region(10, sizeof(value_t));
  EXPECT_THROW(f.um.access(r, 10, 0, 0.0), support::PreconditionError);
  EXPECT_THROW(f.um.access(r + 1, 0, 0, 0.0), support::PreconditionError);
  EXPECT_THROW(f.um.access(r, 0, 4, 0.0), support::PreconditionError);
}

}  // namespace
}  // namespace msptrsv::sim
