// Property sweeps over the engine: monotonicity in cost constants, GPU
// counts and task granularity; conservation of update counts; and backward
// substitution through every simulated backend.
#include <gtest/gtest.h>

#include <tuple>

#include "core/msptrsv.hpp"

namespace msptrsv {
namespace {

sparse::CscMatrix property_matrix() {
  return sparse::gen_layered_dag(12000, 48, 60000, 0.4, 1234);
}

core::SolveResult run(const sparse::CscMatrix& l,
                      const std::vector<value_t>& b, core::Backend backend,
                      sim::Machine machine, int tasks = 8) {
  core::SolveOptions o;
  o.backend = backend;
  o.machine = std::move(machine);
  o.tasks_per_gpu = tasks;
  return core::solve(l, b, o);
}

TEST(EngineProperties, CheaperLaunchNeverSlowsTheTaskPool) {
  const sparse::CscMatrix l = property_matrix();
  const std::vector<value_t> b =
      sparse::gen_rhs_for_solution(l, sparse::gen_solution(l.rows, 1));
  sim::CostModel cheap;
  cheap.kernel_launch_us = 0.5;
  sim::CostModel expensive;
  expensive.kernel_launch_us = 60.0;
  const auto fast = run(l, b, core::Backend::kMgZeroCopy,
                        sim::Machine::dgx1(4, cheap), 32);
  const auto slow = run(l, b, core::Backend::kMgZeroCopy,
                        sim::Machine::dgx1(4, expensive), 32);
  EXPECT_LT(fast.report.solve_us, slow.report.solve_us);
}

TEST(EngineProperties, HigherFaultLatencyHurtsUnifiedOnly) {
  const sparse::CscMatrix l = property_matrix();
  const std::vector<value_t> b =
      sparse::gen_rhs_for_solution(l, sparse::gen_solution(l.rows, 2));
  sim::CostModel fast_fault;
  fast_fault.page_fault_us = 5.0;
  sim::CostModel slow_fault;
  slow_fault.page_fault_us = 60.0;
  const auto u_fast = run(l, b, core::Backend::kMgUnified,
                          sim::Machine::dgx1(4, fast_fault));
  const auto u_slow = run(l, b, core::Backend::kMgUnified,
                          sim::Machine::dgx1(4, slow_fault));
  EXPECT_LT(u_fast.report.solve_us, u_slow.report.solve_us);
  // The NVSHMEM design never touches managed memory: invariant to it.
  const auto z_fast = run(l, b, core::Backend::kMgZeroCopy,
                          sim::Machine::dgx1(4, fast_fault));
  const auto z_slow = run(l, b, core::Backend::kMgZeroCopy,
                          sim::Machine::dgx1(4, slow_fault));
  EXPECT_DOUBLE_EQ(z_fast.report.solve_us, z_slow.report.solve_us);
}

TEST(EngineProperties, UpdateCountsConservedAcrossConfigurations) {
  const sparse::CscMatrix l = property_matrix();
  const std::vector<value_t> b =
      sparse::gen_rhs_for_solution(l, sparse::gen_solution(l.rows, 3));
  const std::uint64_t edges = static_cast<std::uint64_t>(l.nnz() - l.rows);
  for (int gpus : {1, 2, 4, 8}) {
    for (core::Backend be :
         {core::Backend::kMgUnified, core::Backend::kMgZeroCopy}) {
      const auto r = run(l, b, be, sim::Machine::dgx1(gpus));
      EXPECT_EQ(r.report.local_updates + r.report.remote_updates, edges)
          << core::backend_name(be) << " x" << gpus;
    }
  }
}

TEST(EngineProperties, BusyTimeBoundedBySlotsTimesMakespan) {
  const sparse::CscMatrix l = property_matrix();
  const std::vector<value_t> b =
      sparse::gen_rhs_for_solution(l, sparse::gen_solution(l.rows, 4));
  const sim::Machine m = sim::Machine::dgx1(4);
  const auto r = run(l, b, core::Backend::kMgZeroCopy, m);
  for (double busy : r.report.busy_us_per_gpu) {
    EXPECT_LE(busy, (r.report.solve_us + 1e-6) * m.cost.warp_slots_per_gpu);
    EXPECT_GE(busy, 0.0);
  }
}

TEST(EngineProperties, MakespanAtLeastCriticalPathCompute) {
  // No schedule can beat the dependency chain's raw compute time.
  const sparse::CscMatrix l = sparse::gen_chain(3000);
  const std::vector<value_t> b(3000, 1.0);
  const sim::Machine m = sim::Machine::dgx1(4);
  const auto r = run(l, b, core::Backend::kMgZeroCopy, m);
  EXPECT_GE(r.report.solve_us, 3000.0 * m.cost.solve_base_us);
}

class GpuCountSweep : public ::testing::TestWithParam<int> {};

TEST_P(GpuCountSweep, EveryConfigurationSolvesCorrectly) {
  const int gpus = GetParam();
  const sparse::CscMatrix l = property_matrix();
  const std::vector<value_t> x_ref = sparse::gen_solution(l.rows, 5);
  const std::vector<value_t> b = sparse::gen_rhs_for_solution(l, x_ref);
  for (core::Backend be : {core::Backend::kMgUnified,
                           core::Backend::kMgShmem,
                           core::Backend::kMgZeroCopy}) {
    const auto r = run(l, b, be, sim::Machine::dgx1(gpus));
    EXPECT_LT(core::max_relative_difference(r.x, x_ref), 1e-9)
        << core::backend_name(be) << " on " << gpus << " GPUs";
  }
  // DGX-2 up to 16.
  const auto r16 = run(l, b, core::Backend::kMgZeroCopy,
                       sim::Machine::dgx2(std::min(16, gpus * 2)));
  EXPECT_LT(core::max_relative_difference(r16.x, x_ref), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(OneToEight, GpuCountSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

class TaskGranularitySweep : public ::testing::TestWithParam<int> {};

TEST_P(TaskGranularitySweep, SolvesCorrectlyAndLaunchesMatchTaskCount) {
  const int tasks = GetParam();
  const sparse::CscMatrix l = property_matrix();
  const std::vector<value_t> x_ref = sparse::gen_solution(l.rows, 6);
  const std::vector<value_t> b = sparse::gen_rhs_for_solution(l, x_ref);
  const auto r =
      run(l, b, core::Backend::kMgZeroCopy, sim::Machine::dgx1(4), tasks);
  EXPECT_LT(core::max_relative_difference(r.x, x_ref), 1e-9);
  EXPECT_EQ(r.report.kernel_launches, static_cast<std::uint64_t>(4 * tasks));
}

INSTANTIATE_TEST_SUITE_P(PowersOfTwo, TaskGranularitySweep,
                         ::testing::Values(1, 2, 4, 8, 16, 32, 64, 128));

TEST(EngineProperties, BackwardSubstitutionThroughEverySimulatedBackend) {
  const sparse::CscMatrix lower = sparse::gen_layered_dag(5000, 25, 25000, 0.5, 7);
  const sparse::CscMatrix upper = sparse::mirror_to_upper(lower);
  const std::vector<value_t> x_ref = sparse::gen_solution(upper.rows, 8);
  const std::vector<value_t> b = sparse::multiply(upper, x_ref);
  for (core::Backend be :
       {core::Backend::kGpuLevelSet, core::Backend::kMgUnified,
        core::Backend::kMgUnifiedTask, core::Backend::kMgShmem,
        core::Backend::kMgZeroCopy}) {
    core::SolveOptions o;
    o.backend = be;
    o.machine = sim::Machine::dgx1(be == core::Backend::kGpuLevelSet ? 1 : 4);
    const core::SolveResult r = core::solve_upper(upper, b, o);
    EXPECT_LT(core::max_relative_difference(r.x, x_ref), 1e-9)
        << core::backend_name(be);
  }
}

}  // namespace
}  // namespace msptrsv
