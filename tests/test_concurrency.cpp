// Multi-threaded stress of the shared-plan contract: N caller threads
// hammering one SolverPlan's solve()/solve_batch() concurrently must be
// safe on every backend (concurrent callers lease disjoint workspaces;
// simulated runs build fresh policy state per solve) and, with the
// floating-point order pinned (cpu_threads = 1), must produce bit-for-bit
// the results the same plan computes single-threaded. Runs under the
// ASan/UBSan CI configuration like every other test.
#include <gtest/gtest.h>

#include <atomic>
#include <span>
#include <thread>
#include <vector>

#include "core/msptrsv.hpp"

namespace msptrsv {
namespace {

constexpr int kCallers = 6;
constexpr int kItersPerCaller = 4;
constexpr index_t kBatchRhs = 3;

sparse::CscMatrix stress_matrix() {
  return sparse::gen_layered_dag(600, 18, 3600, 0.5, 123);
}

struct Expectations {
  std::vector<std::vector<value_t>> singles;  // one x per rhs
  std::vector<value_t> batch_x;               // fused batch result
};

/// Drives one backend: computes the expected bits single-threaded, then
/// lets kCallers threads race mixed single/batch solves on the SAME plan.
void stress_backend(const core::SolveOptions& opt) {
  const sparse::CscMatrix l = stress_matrix();

  std::vector<std::vector<value_t>> rhs;
  std::vector<value_t> batch;
  for (index_t j = 0; j < kBatchRhs; ++j) {
    rhs.push_back(sparse::gen_rhs_for_solution(
        l, sparse::gen_solution(l.rows, 10 + static_cast<std::uint64_t>(j))));
    batch.insert(batch.end(), rhs.back().begin(), rhs.back().end());
  }

  const auto plan = core::SolverPlan::analyze(l, opt);
  ASSERT_TRUE(plan.ok()) << core::backend_name(opt.backend) << ": "
                         << plan.message();

  Expectations want;
  for (const std::vector<value_t>& b : rhs) {
    want.singles.push_back(plan->solve(b).value().x);
  }
  want.batch_x = plan->solve_batch(batch, kBatchRhs).value().x;

  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> callers;
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&, c] {
      for (int it = 0; it < kItersPerCaller; ++it) {
        // Interleave the shapes so batch and single solves overlap.
        if ((c + it) % 2 == 0) {
          const std::size_t j = static_cast<std::size_t>((c + it) % kBatchRhs);
          const auto r = plan->solve(rhs[j]);
          if (!r.ok()) {
            failures.fetch_add(1);
          } else if (r.value().x != want.singles[j]) {
            mismatches.fetch_add(1);
          }
        } else {
          const auto r = plan->solve_batch(batch, kBatchRhs);
          if (!r.ok()) {
            failures.fetch_add(1);
          } else if (r.value().x != want.batch_x) {
            mismatches.fetch_add(1);
          }
        }
      }
    });
  }
  for (std::thread& t : callers) t.join();
  EXPECT_EQ(failures.load(), 0) << core::backend_name(opt.backend);
  EXPECT_EQ(mismatches.load(), 0)
      << core::backend_name(opt.backend)
      << ": concurrent solves diverged from the single-threaded bits";
  // Concurrency may have grown the host workspace pool, but never beyond
  // the caller count (+1 for the warm-up thread's workspace).
  EXPECT_LE(plan->workspace_count(), static_cast<std::size_t>(kCallers + 1))
      << core::backend_name(opt.backend);

  // The expected values stay reproducible after the storm.
  const std::span<const value_t> b0 = rhs[0];
  EXPECT_EQ(plan->solve(b0).value().x, want.singles[0])
      << core::backend_name(opt.backend);
}

TEST(ConcurrentPlan, SharedPlanIsSafeOnEveryBackend) {
  for (const core::registry::BackendEntry& e : core::registry::backends()) {
    core::SolveOptions opt = core::registry::default_options(e.backend);
    // Pin the kernel-internal thread count so every solve is bit-exact;
    // the concurrency under test is across CALLERS, not inside a kernel.
    opt.cpu_threads = 1;
    stress_backend(opt);
  }
}

TEST(ConcurrentPlan, MultiThreadedKernelsUnderConcurrentCallers) {
  // Host backends with real intra-solve parallelism on top of concurrent
  // callers. The pull-based gather makes the per-rhs summation order the
  // ascending-column row order regardless of thread count, so even these
  // racy-scheduled solves must reproduce the 1-thread bits exactly --
  // asserting that guards the determinism guarantee in cpu_parallel.hpp
  // while ASan/UBSan watch the races themselves.
  const sparse::CscMatrix l = stress_matrix();
  const std::vector<value_t> b = sparse::gen_rhs_for_solution(
      l, sparse::gen_solution(l.rows, 42));
  for (const char* key : {"cpu-levelset", "cpu-syncfree"}) {
    core::SolveOptions serial_opt = core::registry::options_for(key).value();
    serial_opt.cpu_threads = 1;
    const auto baseline = core::SolverPlan::analyze(l, serial_opt);
    ASSERT_TRUE(baseline.ok());
    const std::vector<value_t> want = baseline->solve(b).value().x;

    core::SolveOptions opt = core::registry::options_for(key).value();
    opt.cpu_threads = 2;
    const auto plan = core::SolverPlan::analyze(l, opt);
    ASSERT_TRUE(plan.ok());
    std::atomic<int> bad{0};
    std::vector<std::thread> callers;
    for (int c = 0; c < 4; ++c) {
      callers.emplace_back([&] {
        for (int it = 0; it < 3; ++it) {
          const auto r = plan->solve(b);
          if (!r.ok() || r.value().x != want) bad.fetch_add(1);
        }
      });
    }
    for (std::thread& t : callers) t.join();
    EXPECT_EQ(bad.load(), 0)
        << key << ": multi-threaded solves diverged from the 1-thread bits";
  }
}

}  // namespace
}  // namespace msptrsv
